(* clic-sim: command-line driver for the CLIC reproduction.

   Subcommands:
     latency    ping-pong latency of any stack
     bandwidth  NetPIPE-style bandwidth of any stack at one message size
     stream     one-way saturation stream with CPU/interrupt statistics
     figure     regenerate a paper figure/table by id
     list       list experiment ids *)

open Cmdliner
open Cluster

let stacks = [ "clic"; "tcp"; "mpi-clic"; "mpi-tcp"; "pvm" ]

let stack_arg =
  let doc =
    Printf.sprintf "Communication stack: %s." (String.concat ", " stacks)
  in
  Arg.(value & opt (enum (List.map (fun s -> (s, s)) stacks)) "clic"
       & info [ "s"; "stack" ] ~docv:"STACK" ~doc)

let mtu_arg =
  Arg.(value & opt int 1500
       & info [ "m"; "mtu" ] ~docv:"BYTES" ~doc:"Link MTU (1500 or 9000).")

let size_arg =
  Arg.(value & opt int 1024
       & info [ "n"; "size" ] ~docv:"BYTES" ~doc:"Message size in bytes.")

let reps_arg =
  Arg.(value & opt int 10
       & info [ "r"; "reps" ] ~docv:"N" ~doc:"Timed repetitions.")

let zero_copy_arg =
  Arg.(value & opt bool true
       & info [ "zero-copy" ] ~docv:"BOOL"
           ~doc:"Use CLIC's 0-copy send path (path 2); false selects path 4.")

let verbose_arg =
  Arg.(value & flag
       & info [ "verbose" ] ~doc:"Enable protocol debug logging.")

let config_of ~mtu ~zero_copy =
  let clic_params =
    if zero_copy then Clic.Params.default else Clic.Params.one_copy
  in
  { Node.default_config with mtu; clic_params }

let run_latency verbose stack mtu zero_copy reps =
  ignore (verbose : bool);
  let c = Net.create ~config:(config_of ~mtu ~zero_copy) ~n:2 () in
  let pair = Report.Pairs.of_name stack c ~a:0 ~b:1 in
  let r = Measure.pingpong c pair ~size:0 ~reps () in
  Printf.printf "%s 0-byte one-way latency at MTU %d: %.2f us\n" stack mtu
    (Engine.Time.to_us r.Measure.one_way)

let run_bandwidth verbose stack mtu zero_copy size reps =
  ignore (verbose : bool);
  let c = Net.create ~config:(config_of ~mtu ~zero_copy) ~n:2 () in
  let pair = Report.Pairs.of_name stack c ~a:0 ~b:1 in
  let r = Measure.pingpong c pair ~size ~reps ~warmup:1 () in
  Printf.printf "%s %dB at MTU %d: %.1f Mbit/s (one-way %.1f us)\n" stack size
    mtu r.Measure.pp_bandwidth_mbps
    (Engine.Time.to_us r.Measure.one_way)

let run_stream verbose stack mtu zero_copy size reps =
  ignore (verbose : bool);
  let c = Net.create ~config:(config_of ~mtu ~zero_copy) ~n:2 () in
  let pair = Report.Pairs.of_name stack c ~a:0 ~b:1 in
  let messages = max reps 100 in
  let r = Measure.stream c pair ~a:0 ~b:1 ~size ~messages in
  Printf.printf
    "%s stream of %d x %dB at MTU %d: %.1f Mbit/s, sender CPU %.0f%%, \
     receiver CPU %.0f%%, %d interrupts\n"
    stack messages size mtu r.Measure.st_bandwidth_mbps
    (100. *. r.Measure.sender_cpu)
    (100. *. r.Measure.receiver_cpu)
    r.Measure.receiver_interrupts

let run_figure verbose id quick =
  ignore (verbose : bool);
  if quick && List.mem id [ "fig4"; "fig5"; "fig6"; "tab1"; "fig1" ] then begin
    let fmt = Format.std_formatter in
    match id with
    | "fig4" -> ignore (Report.Figures.fig4 ~quick fmt)
    | "fig5" -> ignore (Report.Figures.fig5 ~quick fmt)
    | "fig6" -> ignore (Report.Figures.fig6 ~quick fmt)
    | "tab1" -> ignore (Report.Figures.tab1 ~quick fmt)
    | "fig1" -> ignore (Report.Figures.fig1 ~quick fmt)
    | _ -> ()
  end
  else Report.Figures.run id Format.std_formatter

let latency_cmd =
  Cmd.v (Cmd.info "latency" ~doc:"Ping-pong 0-byte latency")
    Term.(const run_latency $ verbose_arg $ stack_arg $ mtu_arg $ zero_copy_arg $ reps_arg)

let bandwidth_cmd =
  Cmd.v (Cmd.info "bandwidth" ~doc:"NetPIPE-style bandwidth at one size")
    Term.(
      const run_bandwidth $ verbose_arg $ stack_arg $ mtu_arg $ zero_copy_arg
      $ size_arg $ reps_arg)

let stream_cmd =
  Cmd.v (Cmd.info "stream" ~doc:"Saturation stream with CPU statistics")
    Term.(
      const run_stream $ verbose_arg $ stack_arg $ mtu_arg $ zero_copy_arg
      $ size_arg $ reps_arg)

let figure_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID"
         ~doc:"Experiment id (see `clic-sim list').")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweep sizes.")
  in
  Cmd.v (Cmd.info "figure" ~doc:"Regenerate a paper figure or table")
    Term.(const run_figure $ verbose_arg $ id $ quick)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids")
    Term.(
      const (fun () ->
          List.iter print_endline Report.Figures.all_ids)
      $ const ())

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let () =
  (if Array.exists (String.equal "--verbose") Sys.argv then setup_logs true
   else setup_logs false);
  let info =
    Cmd.info "clic-sim" ~version:"1.0.0"
      ~doc:"Simulated reproduction of the CLIC lightweight protocol paper"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ latency_cmd; bandwidth_cmd; stream_cmd; figure_cmd; list_cmd ]))
