(* Tests for the reporting layer: rendering, pair registry, and the quick
   figure drivers' structural invariants. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let render_to_string f =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_table_alignment () =
  let out =
    render_to_string (fun fmt ->
        Report.Render.table fmt ~header:[ "name"; "value" ]
          ~rows:[ [ "alpha"; "1" ]; [ "b"; "22222" ] ]
          ())
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: _ ->
      check_bool "rule under header" true
        (String.length rule >= String.length "name  value");
      check_bool "header first" true
        (String.length header > 0 && String.sub header 0 4 = "name")
  | _ -> Alcotest.fail "too few lines");
  (* all data rows start at aligned columns *)
  check_bool "alpha row present" true
    (List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "alpha")
       lines)

let test_series_table_merges_x_values () =
  let s1 = Stats.Series.create ~name:"a" in
  let s2 = Stats.Series.create ~name:"b" in
  Stats.Series.add s1 ~x:1. ~y:10.;
  Stats.Series.add s2 ~x:2. ~y:20.;
  let out =
    render_to_string (fun fmt ->
        Report.Render.series_table fmt ~title:"t" ~x_label:"x"
          ~series:[ s1; s2 ])
  in
  (* both x values appear; missing cells are "-" *)
  check_bool "x=1 row" true
    (List.exists
       (fun l -> String.length l > 0 && l.[0] = '1')
       (String.split_on_char '\n' out));
  check_bool "dash for missing" true
    (String.length out > 0
    && String.index_opt out '-' <> None)

let test_bar_proportions () =
  check_str "full" "####" (Report.Render.bar 10. ~max:10. ~width:4);
  check_str "half" "##" (Report.Render.bar 5. ~max:10. ~width:4);
  check_str "zero" "" (Report.Render.bar 0. ~max:10. ~width:4);
  check_str "degenerate max" "" (Report.Render.bar 5. ~max:0. ~width:4)

let test_timeline_shape () =
  let sim = Sim.create () in
  let spans =
    [
      { Trace.label = "first"; start = 0; finish = Time.us 10. };
      { Trace.label = "second"; start = Time.us 10.; finish = Time.us 20. };
    ]
  in
  ignore sim;
  let out =
    render_to_string (fun fmt -> Report.Render.timeline fmt ~width:20 spans)
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  check_int "two bars + axis" 3 (List.length lines);
  check_bool "bars drawn" true (String.contains out '#')

let test_pairs_registry () =
  List.iter
    (fun name ->
      let c = Cluster.Net.create ~n:2 () in
      let pair = Report.Pairs.of_name name c ~a:0 ~b:1 in
      check_bool name true (String.length pair.Cluster.Measure.label > 0))
    [ "clic"; "tcp"; "mpi-clic"; "mpi-tcp"; "pvm" ];
  Alcotest.check_raises "unknown stack"
    (Invalid_argument "Pairs.of_name: unknown \"bogus\"") (fun () ->
      let c = Cluster.Net.create ~n:2 () in
      ignore (Report.Pairs.of_name "bogus" c ~a:0 ~b:1))

let test_paper_reference_values () =
  check_bool "latency" true (Report.Paper.zero_byte_latency_us = 36.);
  check_bool "asymptote order" true
    (Report.Paper.clic_asymptote_mtu9000_mbps
   > Report.Paper.clic_asymptote_mtu1500_mbps);
  check_bool "half-bandwidth order" true
    (Report.Paper.half_bandwidth_size_tcp
   > Report.Paper.half_bandwidth_size_clic)

let test_figures_run_rejects_unknown () =
  let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Figures.run: unknown id \"nope\"") (fun () ->
      Report.Figures.run "nope" null_fmt)

let test_fig5_quick_invariants () =
  let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  match Report.Figures.fig5 ~quick:true null_fmt with
  | [ clic9000; clic1500; tcp9000; tcp1500 ] ->
      let top s = Stats.Series.max_y s in
      check_bool "clic 9000 highest" true
        (top clic9000 > top tcp9000 && top clic9000 > top tcp1500);
      check_bool "clic beats tcp at same mtu" true
        (top clic1500 > top tcp1500);
      (* every curve is monotone-ish: max at the largest size *)
      List.iter
        (fun s ->
          match List.rev (Stats.Series.points s) with
          | (_, last) :: _ ->
              check_bool "asymptote at large sizes" true
                (last >= 0.8 *. top s)
          | [] -> Alcotest.fail "empty series")
        [ clic9000; clic1500; tcp9000; tcp1500 ]
  | _ -> Alcotest.fail "unexpected fig5 shape"

let suite =
  [
    ("table alignment", `Quick, test_table_alignment);
    ("series table", `Quick, test_series_table_merges_x_values);
    ("bar proportions", `Quick, test_bar_proportions);
    ("timeline shape", `Quick, test_timeline_shape);
    ("pairs registry", `Quick, test_pairs_registry);
    ("paper reference", `Quick, test_paper_reference_values);
    ("unknown figure id", `Quick, test_figures_run_rejects_unknown);
    ("fig5 invariants", `Slow, test_fig5_quick_invariants);
  ]
