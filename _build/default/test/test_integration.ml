(* Integration tests: the paper's comparative claims, asserted against the
   reproduction with tolerances.  These use reduced sweeps (quick mode or
   direct measurements) to stay fast; EXPERIMENTS.md records the full
   figures. *)

open Engine
open Cluster

let check_bool = Alcotest.(check bool)

let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let bandwidth ~mtu ?clic_params ~pair_name size =
  let config =
    match clic_params with
    | None -> { Node.default_config with mtu }
    | Some p -> { Node.default_config with mtu; clic_params = p }
  in
  let c = Net.create ~config ~n:2 () in
  let pair = Report.Pairs.of_name pair_name c ~a:0 ~b:1 in
  (Measure.pingpong c pair ~size ~reps:3 ~warmup:1 ())
    .Measure.pp_bandwidth_mbps

let test_zero_byte_latency_near_paper () =
  let c = Net.create ~n:2 () in
  let pair = Measure.clic_pair c ~a:0 ~b:1 () in
  let lat = Time.to_us (Measure.pingpong c pair ~size:0 ()).Measure.one_way in
  check_bool
    (Printf.sprintf "36us +-20%% (got %.1f)" lat)
    true
    (lat > 29. && lat < 44.)

let test_jumbo_beats_standard_mtu () =
  let b9000 = bandwidth ~mtu:9000 ~pair_name:"clic" 1_048_576 in
  let b1500 = bandwidth ~mtu:1500 ~pair_name:"clic" 1_048_576 in
  check_bool
    (Printf.sprintf "9000 (%.0f) > 1500 (%.0f)" b9000 b1500)
    true (b9000 > b1500);
  (* asymptotes near the paper's 600 / 450 Mbit/s *)
  check_bool "9000 in [500,700]" true (b9000 > 500. && b9000 < 700.);
  check_bool "1500 in [380,530]" true (b1500 > 380. && b1500 < 530.)

let test_zero_copy_beats_one_copy_more_at_1500 () =
  let gap mtu =
    let zero = bandwidth ~mtu ~pair_name:"clic" 1_048_576 in
    let one =
      bandwidth ~mtu ~clic_params:Clic.Params.one_copy ~pair_name:"clic"
        1_048_576
    in
    (zero -. one) /. zero
  in
  let gap1500 = gap 1500 and gap9000 = gap 9000 in
  check_bool "0-copy wins at 1500" true (gap1500 > 0.);
  check_bool "0-copy wins at 9000" true (gap9000 >= 0.);
  check_bool
    (Printf.sprintf "effect larger at 1500 (%.2f vs %.2f)" gap1500 gap9000)
    true (gap1500 > gap9000)

let test_clic_more_than_twice_tcp () =
  let clic = bandwidth ~mtu:9000 ~pair_name:"clic" 1_048_576 in
  let tcp = bandwidth ~mtu:9000 ~pair_name:"tcp" 1_048_576 in
  check_bool
    (Printf.sprintf "clic (%.0f) > 2 x tcp (%.0f)" clic tcp)
    true
    (clic > 2. *. tcp)

let test_clic_ramps_faster_than_tcp () =
  (* The half-bandwidth crossover: CLIC reaches half its asymptote at a
     smaller message size than TCP does. *)
  let half name =
    let top = bandwidth ~mtu:1500 ~pair_name:name 1_048_576 in
    let rec scan = function
      | [] -> 1_048_576
      | size :: rest ->
          if bandwidth ~mtu:1500 ~pair_name:name size >= top /. 2. then size
          else scan rest
    in
    scan [ 1024; 2048; 4096; 8192; 16384; 32768; 65536 ]
  in
  let clic_half = half "clic" and tcp_half = half "tcp" in
  check_bool
    (Printf.sprintf "clic half at %dB <= tcp half at %dB" clic_half tcp_half)
    true
    (clic_half <= tcp_half);
  check_bool "clic half-point is a few KB" true
    (clic_half >= 1024 && clic_half <= 16384)

let test_mpi_clic_over_mpi_tcp () =
  let mc = bandwidth ~mtu:9000 ~pair_name:"mpi-clic" 1_048_576 in
  let mt = bandwidth ~mtu:9000 ~pair_name:"mpi-tcp" 1_048_576 in
  check_bool
    (Printf.sprintf "mpi-clic (%.0f) >= 1.5 x mpi-tcp (%.0f)" mc mt)
    true
    (mc >= 1.5 *. mt)

let test_mpi_clic_hugs_raw_clic () =
  let raw = bandwidth ~mtu:9000 ~pair_name:"clic" 1_048_576 in
  let mpi = bandwidth ~mtu:9000 ~pair_name:"mpi-clic" 1_048_576 in
  check_bool "within 10% of raw CLIC" true (mpi > 0.9 *. raw)

let test_pvm_is_lowest_curve () =
  let pvm = bandwidth ~mtu:9000 ~pair_name:"pvm" 1_048_576 in
  let mpi_tcp = bandwidth ~mtu:9000 ~pair_name:"mpi-tcp" 1_048_576 in
  let mpi_clic = bandwidth ~mtu:9000 ~pair_name:"mpi-clic" 1_048_576 in
  check_bool
    (Printf.sprintf "pvm (%.0f) below mpi-tcp (%.0f)" pvm mpi_tcp)
    true (pvm < mpi_tcp);
  check_bool "pvm far below mpi-clic" true (pvm < mpi_clic /. 2.)

let test_fig7_direct_isr_faster () =
  let r = Report.Figures.fig7 null_fmt in
  check_bool "direct-ISR path is faster" true
    (r.Report.Figures.latency_b_us < r.Report.Figures.latency_a_us);
  let bh =
    List.find
      (fun s -> s.Report.Figures.stage = "driver: bottom half")
      r.Report.Figures.stages
  in
  check_bool "bottom half eliminated in (b)" true
    (bh.Report.Figures.b_us = 0.);
  check_bool "bottom half near the paper's 15us in (a)" true
    (bh.Report.Figures.a_us > 8. && bh.Report.Figures.a_us < 22.)

let test_coalescing_reduces_interrupt_rate () =
  let irqs_per_packet coalesce =
    let config = { Node.default_config with mtu = 1500; coalesce } in
    let c = Net.create ~config ~n:2 () in
    let pair = Measure.clic_pair c ~a:0 ~b:1 () in
    let r = Measure.stream c pair ~a:0 ~b:1 ~size:1488 ~messages:400 in
    float_of_int r.Measure.receiver_interrupts /. 400.
  in
  let without = irqs_per_packet Hw.Nic.no_coalesce in
  let with_ =
    irqs_per_packet
      { Hw.Nic.max_frames = 16; quiet = Time.us 30.; absolute = Time.us 200. }
  in
  check_bool
    (Printf.sprintf "coalescing %.2f < %.2f irqs/pkt" with_ without)
    true (with_ < without)

let test_interrupt_interval_matches_section2 () =
  (* Section 2: a saturated MTU-1500 gigabit stream means a frame every
     ~12us on the wire. *)
  let config =
    { Node.default_config with mtu = 1500; coalesce = Hw.Nic.no_coalesce }
  in
  let c = Net.create ~config ~n:2 () in
  let pair = Measure.clic_pair c ~a:0 ~b:1 () in
  let r = Measure.stream c pair ~a:0 ~b:1 ~size:1488 ~messages:500 in
  let us_per_packet = Time.to_us r.Measure.elapsed /. 500. in
  (* our pipeline is PCI/CPU-bound above the 12us wire minimum *)
  check_bool
    (Printf.sprintf "inter-packet %.1fus in [12,40]" us_per_packet)
    true
    (us_per_packet >= 12. && us_per_packet < 40.)

let test_bonding_improves_throughput () =
  let rows = Report.Figures.ext2 null_fmt in
  match rows with
  | [ (_, single); (_, shared_bus); (_, dual_bus) ] ->
      check_bool
        (Printf.sprintf "dual-bus bonding %.0f > single %.0f" dual_bus single)
        true
        (dual_bus > single *. 1.3);
      check_bool "shared bus stays bus-capped" true (shared_bus < dual_bus)
  | _ -> Alcotest.fail "unexpected ext2 shape"

let test_clic_broadcast_beats_mpi_tree () =
  let rows = Report.Figures.ext3 ~nodes:6 null_fmt in
  match rows with
  | [ (_, clic_t); (_, mpi_t) ] ->
      check_bool
        (Printf.sprintf "bcast %.0fus < tree %.0fus" clic_t mpi_t)
        true (clic_t < mpi_t)
  | _ -> Alcotest.fail "unexpected ext3 shape"

let test_nic_fragmentation_reduces_interrupts () =
  let rows = Report.Figures.ext1 null_fmt in
  match rows with
  | [ (_, bw_off, ipm_off); (_, bw_on, ipm_on) ] ->
      check_bool
        (Printf.sprintf "irqs/message: frag on %.2f << off %.2f" ipm_on
           ipm_off)
        true
        (ipm_on < ipm_off /. 4.);
      check_bool
        (Printf.sprintf "bandwidth not hurt (%.0f vs %.0f)" bw_on bw_off)
        true
        (bw_on > bw_off *. 0.9)
  | _ -> Alcotest.fail "unexpected ext1 shape"

let test_latency_under_load_bounded () =
  match Report.Figures.ext4 null_fmt with
  | [ (_, idle); (_, loaded) ] ->
      let p50 l =
        let arr = Array.of_list (List.sort compare l) in
        arr.(Array.length arr / 2)
      in
      let i = p50 idle and l = p50 loaded in
      check_bool "load costs latency" true (l > i);
      check_bool "but stays bounded (< 5ms)" true (l < Time.ms 5.)
  | _ -> Alcotest.fail "unexpected ext4 shape"

let test_asymptote_matches_analytic_bound () =
  (* The MTU-9000 asymptote must sit just under the analytic PCI bound:
     frame bytes over the derated 33 MHz/32-bit bus plus per-transaction
     setup, per 8988-byte CLIC payload.  The simulation should come within
     15% of the closed form (it adds firmware, wire and CPU stages). *)
  let cfg = Node.default_config in
  let frame_bytes = 9000 + 14 in
  let pci_rate = 132e6 *. cfg.Node.pci_efficiency in
  let per_packet_s = (float_of_int frame_bytes /. pci_rate) +. 0.9e-6 in
  let bound_mbps = float_of_int (8988 * 8) /. per_packet_s /. 1e6 in
  let measured = bandwidth ~mtu:9000 ~pair_name:"clic" 4_194_304 in
  check_bool
    (Printf.sprintf "measured %.0f within (%.0f .. %.0f)" measured
       (0.85 *. bound_mbps) bound_mbps)
    true
    (measured <= bound_mbps && measured >= 0.85 *. bound_mbps)

let test_stress_exactly_once () =
  List.iter
    (fun (name, sent, delivered, _, _) ->
      check_bool (name ^ ": exactly once") true (sent = delivered))
    (Report.Figures.stress null_fmt)

let suite =
  [
    ("0-byte latency", `Quick, test_zero_byte_latency_near_paper);
    ("jumbo beats 1500", `Slow, test_jumbo_beats_standard_mtu);
    ("0-copy vs 1-copy", `Slow, test_zero_copy_beats_one_copy_more_at_1500);
    ("clic > 2x tcp", `Slow, test_clic_more_than_twice_tcp);
    ("clic ramps faster", `Slow, test_clic_ramps_faster_than_tcp);
    ("mpi-clic >= 1.5x mpi-tcp", `Slow, test_mpi_clic_over_mpi_tcp);
    ("mpi-clic hugs clic", `Slow, test_mpi_clic_hugs_raw_clic);
    ("pvm lowest", `Slow, test_pvm_is_lowest_curve);
    ("fig7 direct isr", `Quick, test_fig7_direct_isr_faster);
    ("coalescing", `Quick, test_coalescing_reduces_interrupt_rate);
    ("interrupt interval", `Quick, test_interrupt_interval_matches_section2);
    ("channel bonding", `Quick, test_bonding_improves_throughput);
    ("broadcast vs tree", `Quick, test_clic_broadcast_beats_mpi_tree);
    ("latency under load", `Quick, test_latency_under_load_bounded);
    ("analytic PCI bound", `Slow, test_asymptote_matches_analytic_bound);
    ("stress exactly-once", `Slow, test_stress_exactly_once);
    ("nic fragmentation", `Quick, test_nic_fragmentation_reduces_interrupts);
  ]
