(* Tests for the Section 3.2 comparison systems: the GAMMA-like
   active-port protocol and the VIA-like user-level polling interface. *)

open Engine
open Cluster

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let gamma_cluster () =
  let config =
    { Node.default_config with
      driver_params = Rivals.Gamma.driver_params;
      coalesce = Hw.Nic.no_coalesce }
  in
  let c = Net.create ~config ~n:2 () in
  let mk i =
    let node = Net.node c i in
    Rivals.Gamma.create node.Node.env (List.hd node.Node.eths)
  in
  (c, mk 0, mk 1)

let via_cluster () =
  let config =
    { Node.default_config with
      driver_params = Rivals.Via.driver_params;
      irq_dispatch = Time.us 0.5;
      coalesce = Hw.Nic.no_coalesce }
  in
  let c = Net.create ~config ~n:2 () in
  let mk i =
    let node = Net.node c i in
    Rivals.Via.create node.Node.env (List.hd node.Node.eths) ()
  in
  (c, mk 0, mk 1)

(* ------------------------------------------------------------------ *)
(* GAMMA *)

let test_gamma_active_handler_fires () =
  let c, ga, gb = gamma_cluster () in
  let got = ref None in
  Rivals.Gamma.bind_port gb ~port:3 (fun m ->
      got := Some (m.Rivals.Gamma.gm_src, m.Rivals.Gamma.gm_bytes));
  Node.spawn (Net.node c 0) (fun () ->
      Rivals.Gamma.send ga ~dst:1 ~port:3 5000);
  Net.run c;
  Alcotest.(check (option (pair int int))) "handler ran" (Some (0, 5000)) !got

let test_gamma_multi_fragment () =
  let c, ga, gb = gamma_cluster () in
  let got = ref 0 in
  Node.spawn (Net.node c 1) (fun () ->
      got := (Rivals.Gamma.recv gb ~port:3).Rivals.Gamma.gm_bytes);
  Node.spawn (Net.node c 0) (fun () ->
      Rivals.Gamma.send ga ~dst:1 ~port:3 50_000);
  Net.run c;
  check_int "reassembled" 50_000 !got

let test_gamma_duplicate_port () =
  let _, ga, _ = gamma_cluster () in
  Rivals.Gamma.bind_port ga ~port:5 (fun _ -> ());
  Alcotest.check_raises "dup"
    (Invalid_argument "Gamma.bind_port: port 5 taken") (fun () ->
      Rivals.Gamma.bind_port ga ~port:5 (fun _ -> ()))

let test_gamma_faster_than_clic () =
  (* GAMMA's replaced driver and lightweight syscalls must beat CLIC's
     latency on the same hardware — the price CLIC pays for keeping the
     vendor driver (paper Section 5). *)
  let lat_gamma =
    let c, ga, gb = gamma_cluster () in
    let t0 = ref 0 and t1 = ref 0 in
    Node.spawn (Net.node c 1) (fun () ->
        ignore (Rivals.Gamma.recv gb ~port:1);
        Rivals.Gamma.send gb ~dst:0 ~port:1 0);
    Node.spawn (Net.node c 0) (fun () ->
        t0 := Sim.now c.Net.sim;
        Rivals.Gamma.send ga ~dst:1 ~port:1 0;
        ignore (Rivals.Gamma.recv ga ~port:1);
        t1 := Sim.now c.Net.sim);
    Net.run c;
    (!t1 - !t0) / 2
  in
  let lat_clic =
    let c = Net.create ~n:2 () in
    let pair = Measure.clic_pair c ~a:0 ~b:1 () in
    (Measure.pingpong c pair ~size:0 ()).Measure.one_way
  in
  check_bool
    (Printf.sprintf "gamma %.1fus < clic %.1fus" (Time.to_us lat_gamma)
       (Time.to_us lat_clic))
    true
    (lat_gamma < lat_clic)

(* ------------------------------------------------------------------ *)
(* VIA *)

let test_via_poll_receives () =
  let c, va, vb = via_cluster () in
  let got = ref 0 in
  Node.spawn (Net.node c 1) (fun () ->
      got := (Rivals.Via.recv vb).Rivals.Via.vi_bytes);
  Node.spawn (Net.node c 0) (fun () -> Rivals.Via.send va ~dst:1 800);
  Net.run c;
  check_int "completion" 800 !got;
  check_bool "poll probes were paid" true (Rivals.Via.polls vb >= 1)

let test_via_segments_per_mtu () =
  let c, va, vb = via_cluster () in
  let entries = ref 0 and bytes = ref 0 in
  Node.spawn (Net.node c 1) (fun () ->
      while !bytes < 10_000 do
        let cm = Rivals.Via.recv vb in
        incr entries;
        bytes := !bytes + cm.Rivals.Via.vi_bytes
      done);
  Node.spawn (Net.node c 0) (fun () -> Rivals.Via.send va ~dst:1 10_000);
  Net.run c;
  check_int "all bytes" 10_000 !bytes;
  (* 10000 / (1500-4) -> 7 descriptors *)
  check_int "one completion per MTU descriptor" 7 !entries

let test_via_polling_burns_cpu () =
  let c, _, vb = via_cluster () in
  let nb = Net.node c 1 in
  let util = ref 0. in
  Node.spawn nb (fun () ->
      Os_model.Cpu.reset_stats (Node.cpu nb);
      (* nothing ever arrives: poll for 1 ms, then observe *)
      ignore vb;
      let deadline = Time.ms 1. in
      let rec spin () =
        if Sim.now c.Net.sim < deadline then begin
          Os_model.Cpu.work (Node.cpu nb) (Time.us 0.4);
          Process.delay (Time.us 0.1);
          spin ()
        end
      in
      spin ();
      util := Os_model.Cpu.utilization (Node.cpu nb) ~since:0);
  Net.run c;
  check_bool
    (Printf.sprintf "waiting receiver busy (%.0f%%)" (100. *. !util))
    true (!util > 0.5)

let test_sec3_ordering () =
  let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  match Report.Figures.sec3 null_fmt with
  | [ clic; gamma; via ] ->
      check_bool "gamma latency < clic" true
        (gamma.Report.Figures.r_latency_us < clic.Report.Figures.r_latency_us);
      check_bool "via latency < gamma" true
        (via.Report.Figures.r_latency_us < gamma.Report.Figures.r_latency_us);
      check_bool "gamma bandwidth highest" true
        (gamma.Report.Figures.r_bw_mbps > clic.Report.Figures.r_bw_mbps);
      check_bool "only via burns idle cpu" true
        (via.Report.Figures.r_idle_cpu > 0.5
        && clic.Report.Figures.r_idle_cpu < 0.1
        && gamma.Report.Figures.r_idle_cpu < 0.1)
  | _ -> Alcotest.fail "unexpected sec3 shape"

let suite =
  [
    ("gamma active handler", `Quick, test_gamma_active_handler_fires);
    ("gamma multi-fragment", `Quick, test_gamma_multi_fragment);
    ("gamma duplicate port", `Quick, test_gamma_duplicate_port);
    ("gamma beats clic latency", `Quick, test_gamma_faster_than_clic);
    ("via poll receive", `Quick, test_via_poll_receives);
    ("via per-mtu completions", `Quick, test_via_segments_per_mtu);
    ("via polling burns cpu", `Quick, test_via_polling_burns_cpu);
    ("sec3 ordering", `Slow, test_sec3_ordering);
  ]
