(* Tests for the protocol substrate: ethernet demux, IP fragmentation,
   UDP, and the TCP baseline (handshake, transfer, flow control, loss
   recovery, stream semantics). *)

open Engine
open Cluster
open Proto

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let two_nodes ?config () =
  let c = Net.create ?config ~n:2 () in
  (c, Net.node c 0, Net.node c 1)

(* ------------------------------------------------------------------ *)
(* Ethernet layer *)

let test_ethernet_demux_and_unhandled () =
  let c, na, nb = two_nodes () in
  let eth_a = List.hd na.Node.eths and eth_b = List.hd nb.Node.eths in
  let got = ref 0 in
  Ethernet.register eth_b ~ethertype:0x4242 (fun _ -> incr got);
  Node.spawn na (fun () ->
      for _ = 1 to 3 do
        Ethernet.send eth_a ~dst:(Hw.Mac.of_node 1) ~ethertype:0x4242
          ~skb:(Os_model.Skbuff.of_kernel ~header_bytes:0 100)
          ~payload:(Hw.Eth_frame.Raw 100) ()
      done;
      (* no handler for this one *)
      Ethernet.send eth_a ~dst:(Hw.Mac.of_node 1) ~ethertype:0x9999
        ~skb:(Os_model.Skbuff.of_kernel ~header_bytes:0 50)
        ~payload:(Hw.Eth_frame.Raw 50) ());
  Net.run c;
  check_int "handled" 3 !got;
  check_int "unhandled counted" 1 (Ethernet.unhandled eth_b)

let test_ethernet_duplicate_ethertype () =
  let _, na, _ = two_nodes () in
  let eth = List.hd na.Node.eths in
  Ethernet.register eth ~ethertype:0x4242 (fun _ -> ());
  Alcotest.check_raises "dup"
    (Invalid_argument "Ethernet.register: duplicate ethertype 0x4242")
    (fun () -> Ethernet.register eth ~ethertype:0x4242 (fun _ -> ()))

(* ------------------------------------------------------------------ *)
(* IP *)

let test_ip_fragmentation_roundtrip () =
  let c, na, nb = two_nodes () in
  let received = ref [] in
  Udp.bind nb.Node.udp ~port:2 (fun d ~src ->
      received := (src, d.Packet.udp_bytes) :: !received);
  Node.spawn na (fun () ->
      (* 4000B datagram over MTU 1500 -> 3 IP fragments *)
      Udp.sendto na.Node.udp ~dst:1 ~dst_port:2 ~bytes:4000
        ~app:Packet.No_app ());
  Net.run c;
  (match !received with
  | [ (0, 4000) ] -> ()
  | other -> Alcotest.failf "bad delivery (%d entries)" (List.length other));
  check_bool "fragments on the wire" true (Ip.packets_sent na.Node.ip >= 3);
  check_int "no reassembly leak" 0 (Ip.reassembly_pending nb.Node.ip)

let test_ip_fragment_loss_drops_datagram () =
  let config =
    { Node.default_config with
      link_fault = Some (fun () -> Hw.Fault.drop_nth ~every:2) }
  in
  let c, na, nb = two_nodes ~config () in
  let received = ref 0 in
  Udp.bind nb.Node.udp ~port:2 (fun _ ~src:_ -> incr received);
  Node.spawn na (fun () ->
      Udp.sendto na.Node.udp ~dst:1 ~dst_port:2 ~bytes:4000
        ~app:Packet.No_app ());
  Net.run c;
  check_int "datagram lost without reliability" 0 !received

(* ------------------------------------------------------------------ *)
(* UDP *)

let test_udp_ports_and_dispatch () =
  let c, na, nb = two_nodes () in
  let on_7 = ref 0 and on_8 = ref 0 in
  Udp.bind nb.Node.udp ~port:7 (fun _ ~src:_ -> incr on_7);
  Udp.bind nb.Node.udp ~port:8 (fun _ ~src:_ -> incr on_8);
  Node.spawn na (fun () ->
      Udp.sendto na.Node.udp ~dst:1 ~dst_port:7 ~bytes:100
        ~app:Packet.No_app ();
      Udp.sendto na.Node.udp ~dst:1 ~dst_port:8 ~bytes:100
        ~app:Packet.No_app ();
      Udp.sendto na.Node.udp ~dst:1 ~dst_port:9 ~bytes:100
        ~app:Packet.No_app ());
  Net.run c;
  check_int "port 7" 1 !on_7;
  check_int "port 8" 1 !on_8;
  check_int "unbound dropped" 1 (Udp.unbound_drops nb.Node.udp);
  Alcotest.check_raises "dup port" (Invalid_argument "Udp.bind: port 7 taken")
    (fun () -> Udp.bind nb.Node.udp ~port:7 (fun _ ~src:_ -> ()))

(* ------------------------------------------------------------------ *)
(* TCP *)

let tcp_conn_pair ?config () =
  let c, na, nb = two_nodes ?config () in
  Tcp.listen nb.Node.tcp ~port:80;
  (c, na, nb)

let test_tcp_handshake_and_transfer () =
  let c, na, nb = tcp_conn_pair () in
  let got = ref false in
  Node.spawn nb (fun () ->
      let conn = Tcp.accept nb.Node.tcp ~port:80 in
      Tcp.recv conn 50_000;
      got := true);
  Node.spawn na (fun () ->
      let conn = Tcp.connect na.Node.tcp ~dst:1 ~port:80 in
      Tcp.send conn 50_000);
  Net.run c;
  check_bool "transferred" true !got;
  check_int "no retransmits on a clean network" 0
    (Tcp.retransmits na.Node.tcp)

let test_tcp_segmentation_respects_mss () =
  let c, na, nb = tcp_conn_pair () in
  Node.spawn nb (fun () ->
      let conn = Tcp.accept nb.Node.tcp ~port:80 in
      Tcp.recv conn 14_600);
  Node.spawn na (fun () ->
      let conn = Tcp.connect na.Node.tcp ~dst:1 ~port:80 in
      check_int "mss = mtu - 40" 1460 (Tcp.mss conn);
      Tcp.send conn 14_600);
  Net.run c;
  (* 14600 = 10 full segments, plus the handshake SYN *)
  check_bool "at least 10 data segments" true
    (Tcp.segments_sent na.Node.tcp >= 10)

let test_tcp_recovers_from_loss () =
  let config =
    { Node.default_config with
      link_fault = Some (fun () -> Hw.Fault.drop ~rng:(Rng.create ~seed:5)
                            ~prob:0.02) }
  in
  let c, na, nb = tcp_conn_pair ~config () in
  let done_ = ref false in
  let total = 300_000 in
  Node.spawn nb (fun () ->
      let conn = Tcp.accept nb.Node.tcp ~port:80 in
      Tcp.recv conn total;
      check_int "exactly the bytes sent" total (Tcp.bytes_delivered conn);
      done_ := true);
  Node.spawn na (fun () ->
      let conn = Tcp.connect na.Node.tcp ~dst:1 ~port:80 in
      Tcp.send conn total);
  Net.run c;
  check_bool "completed despite drops" true !done_;
  check_bool "retransmissions happened" true (Tcp.retransmits na.Node.tcp > 0)

let test_tcp_flow_control_blocks_sender () =
  let c, na, nb = tcp_conn_pair () in
  let sent_all_at = ref 0 and drained_at = ref 0 in
  Node.spawn nb (fun () ->
      let conn = Tcp.accept nb.Node.tcp ~port:80 in
      (* Do not read for 50 ms: the sender must stall on the window. *)
      Process.delay (Time.ms 50.);
      Tcp.recv conn 500_000;
      drained_at := Sim.now (c.Net.sim));
  Node.spawn na (fun () ->
      let conn = Tcp.connect na.Node.tcp ~dst:1 ~port:80 in
      Tcp.send conn 500_000;
      sent_all_at := Sim.now (c.Net.sim));
  Net.run c;
  (* 500 KB cannot fit the 128 KB socket buffers: the send can only finish
     after the receiver starts consuming. *)
  check_bool "sender stalled until receiver read" true
    (!sent_all_at > Time.ms 50.);
  check_bool "receiver finished after sender" true
    (!drained_at >= !sent_all_at)

let test_tcp_bidirectional_streams () =
  let c, na, nb = tcp_conn_pair () in
  let a_done = ref false and b_done = ref false in
  Node.spawn nb (fun () ->
      let conn = Tcp.accept nb.Node.tcp ~port:80 in
      Tcp.send conn 40_000;
      Tcp.recv conn 60_000;
      b_done := true);
  Node.spawn na (fun () ->
      let conn = Tcp.connect na.Node.tcp ~dst:1 ~port:80 in
      Tcp.send conn 60_000;
      Tcp.recv conn 40_000;
      a_done := true);
  Net.run c;
  check_bool "a" true !a_done;
  check_bool "b" true !b_done

let test_tcp_two_connections_independent () =
  let c, na, nb = tcp_conn_pair () in
  Tcp.listen nb.Node.tcp ~port:81;
  let done1 = ref false and done2 = ref false in
  Node.spawn nb (fun () ->
      let conn = Tcp.accept nb.Node.tcp ~port:80 in
      Tcp.recv conn 10_000;
      done1 := true);
  Node.spawn nb (fun () ->
      let conn = Tcp.accept nb.Node.tcp ~port:81 in
      Tcp.recv conn 20_000;
      done2 := true);
  Node.spawn na (fun () ->
      let c1 = Tcp.connect na.Node.tcp ~dst:1 ~port:80 in
      let c2 = Tcp.connect na.Node.tcp ~dst:1 ~port:81 in
      Tcp.send c2 20_000;
      Tcp.send c1 10_000);
  Net.run c;
  check_bool "conn 1" true !done1;
  check_bool "conn 2" true !done2

let test_tcp_listen_duplicate () =
  let _, _, nb = tcp_conn_pair () in
  Alcotest.check_raises "dup listen"
    (Invalid_argument "Tcp.listen: port 80 taken") (fun () ->
      Tcp.listen nb.Node.tcp ~port:80)

let prop_tcp_delivers_exact_bytes =
  QCheck.Test.make ~count:15 ~name:"tcp delivers exactly n bytes"
    QCheck.(int_range 1 200_000)
    (fun n ->
      let c, na, nb = tcp_conn_pair () in
      let ok = ref false in
      Node.spawn nb (fun () ->
          let conn = Tcp.accept nb.Node.tcp ~port:80 in
          Tcp.recv conn n;
          ok := Tcp.bytes_delivered conn = n && Tcp.available conn = 0);
      Node.spawn na (fun () ->
          let conn = Tcp.connect na.Node.tcp ~dst:1 ~port:80 in
          Tcp.send conn n);
      Net.run c;
      !ok)

let test_tcp_piggybacked_acks () =
  (* In a request/response exchange the reverse data carries the ack, so
     almost no pure ack segments should be emitted. *)
  let c, na, nb = tcp_conn_pair () in
  Node.spawn nb (fun () ->
      let conn = Tcp.accept nb.Node.tcp ~port:80 in
      for _ = 1 to 10 do
        Tcp.recv conn 1000;
        Tcp.send conn 1000
      done);
  Node.spawn na (fun () ->
      let conn = Tcp.connect na.Node.tcp ~dst:1 ~port:80 in
      for _ = 1 to 10 do
        Tcp.send conn 1000;
        Tcp.recv conn 1000
      done);
  Net.run c;
  check_bool
    (Printf.sprintf "few pure acks (%d + %d)" (Tcp.acks_sent na.Node.tcp)
       (Tcp.acks_sent nb.Node.tcp))
    true
    (Tcp.acks_sent na.Node.tcp + Tcp.acks_sent nb.Node.tcp <= 6)

let test_tcp_delayed_ack_timer_fires () =
  (* A single odd segment with no reverse traffic is acknowledged by the
     delayed-ack timer, letting the sender release its buffer. *)
  let c, na, nb = tcp_conn_pair () in
  Node.spawn nb (fun () ->
      let conn = Tcp.accept nb.Node.tcp ~port:80 in
      Tcp.recv conn 500);
  Node.spawn na (fun () ->
      let conn = Tcp.connect na.Node.tcp ~dst:1 ~port:80 in
      Tcp.send conn 500);
  Net.run c;
  check_bool "timer-driven ack emitted" true (Tcp.acks_sent nb.Node.tcp >= 1);
  (* the delack timeout must have elapsed on the simulated clock *)
  check_bool "clock passed the delack timeout" true
    (Sim.now c.Net.sim >= Time.ms 40.)

let test_udp_zero_copy_skips_staging () =
  let c, na, nb = two_nodes () in
  let got = ref 0 in
  Udp.bind nb.Node.udp ~port:3 (fun d ~src:_ -> got := d.Packet.udp_bytes);
  Node.spawn na (fun () ->
      Udp.sendto na.Node.udp ~dst:1 ~dst_port:3 ~bytes:800
        ~app:Packet.No_app ~zero_copy:true ());
  Net.run c;
  check_int "delivered" 800 !got

let test_ip_many_interleaved_datagrams () =
  (* Fragments of several datagrams interleave on the wire; reassembly
     must keep them apart by (source, id). *)
  let c, na, nb = two_nodes () in
  let sizes = ref [] in
  Udp.bind nb.Node.udp ~port:4 (fun d ~src:_ ->
      sizes := d.Packet.udp_bytes :: !sizes);
  Node.spawn na (fun () ->
      List.iter
        (fun n ->
          Udp.sendto na.Node.udp ~dst:1 ~dst_port:4 ~bytes:n
            ~app:Packet.No_app ())
        [ 4000; 6000; 2000; 8000 ]);
  Net.run c;
  Alcotest.(check (list int))
    "all reassembled in order" [ 4000; 6000; 2000; 8000 ]
    (List.rev !sizes)

let prop_tcp_survives_any_loss_seed =
  QCheck.Test.make ~count:8 ~name:"tcp completes under random loss"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let config =
        { Node.default_config with
          link_fault =
            Some (fun () -> Hw.Fault.drop ~rng:(Rng.create ~seed) ~prob:0.03)
        }
      in
      let c, na, nb = two_nodes ~config () in
      Tcp.listen nb.Node.tcp ~port:80;
      let ok = ref false in
      let total = 150_000 in
      Node.spawn nb (fun () ->
          let conn = Tcp.accept nb.Node.tcp ~port:80 in
          Tcp.recv conn total;
          ok := Tcp.bytes_delivered conn = total);
      Node.spawn na (fun () ->
          let conn = Tcp.connect na.Node.tcp ~dst:1 ~port:80 in
          Tcp.send conn total);
      Net.run c;
      !ok)

let test_tcp_close_signals_eof () =
  let c, na, nb = tcp_conn_pair () in
  let got_eof = ref false and data_first = ref false in
  Node.spawn nb (fun () ->
      let conn = Tcp.accept nb.Node.tcp ~port:80 in
      Tcp.recv conn 5000;
      data_first := true;
      (match Tcp.recv conn 1 with
      | () -> ()
      | exception End_of_file -> got_eof := true);
      check_bool "eof state" true (Tcp.at_eof conn));
  Node.spawn na (fun () ->
      let conn = Tcp.connect na.Node.tcp ~dst:1 ~port:80 in
      Tcp.send conn 5000;
      Tcp.close conn);
  Net.run c;
  check_bool "data delivered before eof" true !data_first;
  check_bool "blocked recv woken with End_of_file" true !got_eof

let test_tcp_close_drains_pending_data () =
  (* close must not cut off data still in the send buffer *)
  let c, na, nb = tcp_conn_pair () in
  let delivered = ref 0 in
  Node.spawn nb (fun () ->
      let conn = Tcp.accept nb.Node.tcp ~port:80 in
      Tcp.recv conn 300_000;
      delivered := Tcp.bytes_delivered conn);
  Node.spawn na (fun () ->
      let conn = Tcp.connect na.Node.tcp ~dst:1 ~port:80 in
      Tcp.send conn 300_000;
      Tcp.close conn);
  Net.run c;
  check_int "all bytes arrived before FIN took effect" 300_000 !delivered

let qprops =
  List.map QCheck_alcotest.to_alcotest
    [ prop_tcp_delivers_exact_bytes; prop_tcp_survives_any_loss_seed ]

let suite =
  [
    ("ethernet demux", `Quick, test_ethernet_demux_and_unhandled);
    ("ethernet dup ethertype", `Quick, test_ethernet_duplicate_ethertype);
    ("ip fragmentation", `Quick, test_ip_fragmentation_roundtrip);
    ("ip fragment loss", `Quick, test_ip_fragment_loss_drops_datagram);
    ("udp ports", `Quick, test_udp_ports_and_dispatch);
    ("tcp handshake+transfer", `Quick, test_tcp_handshake_and_transfer);
    ("tcp segmentation", `Quick, test_tcp_segmentation_respects_mss);
    ("tcp loss recovery", `Quick, test_tcp_recovers_from_loss);
    ("tcp flow control", `Quick, test_tcp_flow_control_blocks_sender);
    ("tcp bidirectional", `Quick, test_tcp_bidirectional_streams);
    ("tcp two connections", `Quick, test_tcp_two_connections_independent);
    ("tcp duplicate listen", `Quick, test_tcp_listen_duplicate);
    ("tcp piggybacked acks", `Quick, test_tcp_piggybacked_acks);
    ("tcp delayed ack timer", `Quick, test_tcp_delayed_ack_timer_fires);
    ("udp zero copy", `Quick, test_udp_zero_copy_skips_staging);
    ("ip interleaved datagrams", `Quick, test_ip_many_interleaved_datagrams);
    ("tcp close eof", `Quick, test_tcp_close_signals_eof);
    ("tcp close drains", `Quick, test_tcp_close_drains_pending_data);
  ]
  @ qprops
