test/test_clic.ml: Alcotest Api Array Channel Clic Clic_module Cluster Engine Hw List Measure Net Node Option Params Process QCheck QCheck_alcotest Rng Sim Time Wire
