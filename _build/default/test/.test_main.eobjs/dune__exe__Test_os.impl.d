test/test_os.ml: Alcotest Bottom_half Bus Cpu Driver Engine Eth_frame Hw Interrupt Kmem Ktimer Link List Mac Membus Nic Os_model Pci Process Sched Sim Skbuff Syscall Time
