test/test_engine.ml: Alcotest Bus Engine Float Heap Ivar List Mailbox Option Process QCheck QCheck_alcotest Resource Rng Semaphore Sim Stats Time Trace Units
