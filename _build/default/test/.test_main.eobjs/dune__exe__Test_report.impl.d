test/test_report.ml: Alcotest Buffer Cluster Engine Format List Report Sim Stats String Time Trace
