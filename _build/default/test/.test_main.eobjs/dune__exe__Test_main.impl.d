test/test_main.ml: Alcotest Test_clic Test_cluster Test_engine Test_hw Test_integration Test_mpi Test_os Test_proto Test_report Test_rivals
