test/test_cluster.ml: Alcotest Clic Cluster Engine Hw List Measure Net Node Printf Process Proto Rng Sim Time Workload
