test/test_mpi.ml: Alcotest Array Cluster Collectives Engine List Mpi Mpi_clic Mpi_layer Mpi_tcp Net Node Process Proto Pvm Sim Time
