test/test_hw.ml: Alcotest Array Bus Dma Engine Eth_frame Fault Hw Link List Mac Membus Nic Pci Process QCheck QCheck_alcotest Sim Switch Time
