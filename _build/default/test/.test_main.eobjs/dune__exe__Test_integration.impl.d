test/test_integration.ml: Alcotest Array Clic Cluster Engine Format Hw List Measure Net Node Printf Report Time
