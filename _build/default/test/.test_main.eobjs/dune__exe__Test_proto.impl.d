test/test_proto.ml: Alcotest Cluster Engine Ethernet Hw Ip List Net Node Os_model Packet Printf Process Proto QCheck QCheck_alcotest Rng Sim Tcp Time Udp
