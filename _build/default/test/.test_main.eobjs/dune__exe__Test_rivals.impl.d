test/test_rivals.ml: Alcotest Cluster Engine Format Hw List Measure Net Node Os_model Printf Process Report Rivals Sim Time
