(** The host memory bus.

    Shared by CPU copies and DMA traffic; a memory-to-memory copy crosses it
    twice (read + write), which {!copy_bytes} accounts for.  Default
    bandwidth matches the SDRAM systems of the paper's era (~800 MB/s
    effective). *)

val create :
  Engine.Sim.t ->
  ?name:string ->
  ?bytes_per_s:float ->
  ?setup:Engine.Time.span ->
  unit ->
  Engine.Bus.t

val copy_bytes : int -> int
(** Bus bytes consumed by a CPU memory-to-memory copy of [n] bytes (2n). *)
