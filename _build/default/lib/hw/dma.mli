(** Bus-master DMA transfers between host memory and a NIC.

    A DMA moves bytes across the PCI bus and the host memory bus at the same
    time; the transfer completes when the slower of the two finishes, and
    both buses are occupied for their respective durations (so DMA traffic
    steals memory bandwidth from concurrent CPU copies — the paper notes a
    copy "uses system resources such as the memory and PCI buses"). *)

val transfer : pci:Engine.Bus.t -> membus:Engine.Bus.t -> int -> unit
(** Blocks the calling process until both bus crossings complete.  Zero-byte
    transfers return immediately.  Must run inside a process. *)
