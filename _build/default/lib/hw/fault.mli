(** Fault injection for links: probabilistic frame drops.

    The physical network in the paper's testbed is effectively lossless
    (switched full-duplex Ethernet), so experiments run with {!none}.  The
    reliability layers of CLIC and TCP are exercised in tests by injecting
    drops here. *)

type t

val none : t
(** Never drops. *)

val drop : rng:Engine.Rng.t -> prob:float -> t
(** Drops each frame independently with probability [prob] in [\[0, 1\]].
    @raise Invalid_argument if [prob] is outside [\[0, 1\]]. *)

val drop_nth : every:int -> t
(** Deterministically drops every [every]-th frame (1-based), for
    reproducible unit tests.  [every] must be positive. *)

val should_drop : t -> bool
(** Stateful: call exactly once per frame. *)

val drops : t -> int
(** Number of frames dropped so far. *)
