lib/hw/nic.mli: Bus Engine Eth_frame Link Sim Time
