lib/hw/membus.mli: Engine
