lib/hw/membus.ml: Bus Engine Time
