lib/hw/mac.ml: Format Stdlib
