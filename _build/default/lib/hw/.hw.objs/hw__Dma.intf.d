lib/hw/dma.mli: Engine
