lib/hw/dma.ml: Bus Engine Ivar Process
