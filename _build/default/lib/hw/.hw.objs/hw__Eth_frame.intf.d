lib/hw/eth_frame.mli: Format Mac
