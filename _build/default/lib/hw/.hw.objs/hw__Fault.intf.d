lib/hw/fault.mli: Engine
