lib/hw/switch.ml: Engine Eth_frame Fault Link List Mac Printf Sim Time
