lib/hw/mac.mli: Format
