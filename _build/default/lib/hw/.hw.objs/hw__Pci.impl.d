lib/hw/pci.ml: Bus Engine Time
