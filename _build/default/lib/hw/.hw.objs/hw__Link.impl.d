lib/hw/link.ml: Engine Eth_frame Fault Queue Sim Time
