lib/hw/pci.mli: Engine
