lib/hw/switch.mli: Engine Eth_frame Fault Link
