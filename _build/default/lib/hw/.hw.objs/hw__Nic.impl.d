lib/hw/nic.ml: Bus Dma Engine Eth_frame Hashtbl Link List Logs Mac Mailbox Printf Process Queue Semaphore Sim Time
