lib/hw/eth_frame.ml: Format Mac Printf
