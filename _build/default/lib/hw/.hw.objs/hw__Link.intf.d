lib/hw/link.mli: Engine Eth_frame Fault
