lib/hw/fault.ml: Engine
