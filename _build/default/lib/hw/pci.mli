(** The host I/O bus.

    The paper's testbed uses 33 MHz / 32-bit PCI (132 MB/s peak) and calls
    it out as the emerging bottleneck of the communication path.  A PCI bus
    is just a {!Engine.Bus} with a derated efficiency (burst setup, target
    wait states, arbitration) and a per-transaction setup cost — the PCI 2.1
    delays "of microseconds" the paper cites. *)

val default_efficiency : float
val default_setup : Engine.Time.span

val create :
  Engine.Sim.t ->
  ?name:string ->
  ?clock_mhz:float ->
  ?width_bytes:int ->
  ?efficiency:float ->
  ?setup:Engine.Time.span ->
  unit ->
  Engine.Bus.t
(** Defaults: 33 MHz, 4 bytes wide, {!default_efficiency},
    {!default_setup}. *)

val peak_bytes_per_s : clock_mhz:float -> width_bytes:int -> float
