type kind =
  | None_
  | Drop of { rng : Engine.Rng.t; prob : float }
  | Drop_nth of { every : int; mutable seen : int }

type t = { kind : kind; mutable drops : int }

let none = { kind = None_; drops = 0 }

let drop ~rng ~prob =
  if prob < 0. || prob > 1. then invalid_arg "Fault.drop: prob outside [0,1]";
  { kind = Drop { rng; prob }; drops = 0 }

let drop_nth ~every =
  if every <= 0 then invalid_arg "Fault.drop_nth: every <= 0";
  { kind = Drop_nth { every; seen = 0 }; drops = 0 }

let should_drop t =
  let dropped =
    match t.kind with
    | None_ -> false
    | Drop { rng; prob } -> Engine.Rng.float rng 1.0 < prob
    | Drop_nth d ->
        d.seen <- d.seen + 1;
        d.seen mod d.every = 0
  in
  if dropped then t.drops <- t.drops + 1;
  dropped

let drops t = t.drops
