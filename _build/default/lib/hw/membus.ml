open Engine

let create sim ?(name = "membus") ?(bytes_per_s = 800e6) ?(setup = Time.ns 60)
    () =
  Bus.create sim ~name ~bytes_per_s ~setup ()

let copy_bytes n = 2 * n
