open Engine

let default_efficiency = 0.78
let default_setup = Time.ns 900

let peak_bytes_per_s ~clock_mhz ~width_bytes =
  clock_mhz *. 1e6 *. float_of_int width_bytes

let create sim ?(name = "pci") ?(clock_mhz = 33.) ?(width_bytes = 4)
    ?(efficiency = default_efficiency) ?(setup = default_setup) () =
  Bus.create sim ~name
    ~bytes_per_s:(peak_bytes_per_s ~clock_mhz ~width_bytes)
    ~efficiency ~setup ()
