type t = int
type span = int

let zero = 0
let epoch = 0
let ns n = n

let check_finite label x =
  if Float.is_nan x || Float.abs x = Float.infinity then
    invalid_arg (Printf.sprintf "Time.%s: not finite" label)

let us x =
  check_finite "us" x;
  int_of_float (Float.round (x *. 1e3))

let ms x =
  check_finite "ms" x;
  int_of_float (Float.round (x *. 1e6))

let s x =
  check_finite "s" x;
  int_of_float (Float.round (x *. 1e9))

let to_ns t = t
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_s t = float_of_int t /. 1e9
let add t d = t + d
let diff a b = a - b
let mul d k = d * k

let scale d f =
  check_finite "scale" f;
  int_of_float (Float.round (float_of_int d *. f))

let max = Stdlib.max
let min = Stdlib.min

let of_bytes_at_rate ~bytes_per_s n =
  if bytes_per_s <= 0. then invalid_arg "Time.of_bytes_at_rate: rate <= 0";
  if n <= 0 then 0
  else int_of_float (Float.ceil (float_of_int n /. bytes_per_s *. 1e9))

let of_bits_at_rate ~bits_per_s n =
  if bits_per_s <= 0. then invalid_arg "Time.of_bits_at_rate: rate <= 0";
  if n <= 0 then 0
  else int_of_float (Float.ceil (float_of_int n /. bits_per_s *. 1e9))

let pp fmt t =
  let a = abs t in
  if a < 1_000 then Format.fprintf fmt "%dns" t
  else if a < 1_000_000 then Format.fprintf fmt "%.2fus" (to_us t)
  else if a < 1_000_000_000 then Format.fprintf fmt "%.3fms" (to_ms t)
  else Format.fprintf fmt "%.4fs" (to_s t)

let pp_us fmt t = Format.fprintf fmt "%.2fus" (to_us t)
let to_string t = Format.asprintf "%a" pp t
