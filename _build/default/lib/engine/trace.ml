type span = { label : string; start : Time.t; finish : Time.t }

type t = {
  sim : Sim.t;
  mutable enabled : bool;
  mutable rev_spans : span list;
}

let create sim = { sim; enabled = true; rev_spans = [] }
let enabled t = t.enabled
let set_enabled t e = t.enabled <- e

let record t label start finish =
  if t.enabled then t.rev_spans <- { label; start; finish } :: t.rev_spans

let run t label f =
  let start = Sim.now t.sim in
  let finish v =
    record t label start (Sim.now t.sim);
    v
  in
  match f () with v -> finish v | exception exn -> ignore (finish ()); raise exn

let mark t label =
  let now = Sim.now t.sim in
  record t label now now

let spans t =
  List.sort (fun a b -> compare (a.start, a.finish) (b.start, b.finish))
    (List.rev t.rev_spans)

let clear t = t.rev_spans <- []

let duration t label =
  let total =
    List.fold_left
      (fun acc s ->
        if String.equal s.label label then acc + Time.diff s.finish s.start
        else acc)
      0 (spans t)
  in
  let seen = List.exists (fun s -> String.equal s.label label) (spans t) in
  if seen then Some total else None

let pp fmt t =
  List.iter
    (fun s ->
      Format.fprintf fmt "%-28s %a .. %a (%a)@." s.label Time.pp_us s.start
        Time.pp_us s.finish Time.pp_us (Time.diff s.finish s.start))
    (spans t)
