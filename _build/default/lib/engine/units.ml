let kib n = n * 1024
let mib n = n * 1024 * 1024
let mbit_per_s x = x *. 1e6 /. 8.
let gbit_per_s x = x *. 1e9 /. 8.
let mbyte_per_s x = x *. 1e6
let to_mbit_per_s ~bytes_per_s = bytes_per_s *. 8. /. 1e6

let bandwidth_mbps ~bytes ~span =
  if span <= 0 then 0.
  else to_mbit_per_s ~bytes_per_s:(float_of_int bytes /. Time.to_s span)
