type waiter = { need : int; resume : unit -> unit }
type t = { mutable permits : int; queue : waiter Queue.t }

let create n =
  if n < 0 then invalid_arg "Semaphore.create: negative permits";
  { permits = n; queue = Queue.create () }

let rec drain t =
  match Queue.peek_opt t.queue with
  | Some w when w.need <= t.permits ->
      ignore (Queue.pop t.queue);
      t.permits <- t.permits - w.need;
      w.resume ();
      drain t
  | Some _ | None -> ()

let release ?(n = 1) t =
  if n < 0 then invalid_arg "Semaphore.release: negative count";
  t.permits <- t.permits + n;
  drain t

let try_acquire ?(n = 1) t =
  if Queue.is_empty t.queue && t.permits >= n then begin
    t.permits <- t.permits - n;
    true
  end
  else false

let acquire ?(n = 1) t =
  if not (try_acquire ~n t) then
    Process.await (fun resume -> Queue.add { need = n; resume } t.queue)

let available t = t.permits
let waiters t = Queue.length t.queue
