(** Blocking-style simulation processes, built on OCaml effect handlers.

    A process is ordinary OCaml code that may call {!delay}, {!await} or
    {!fork}; those suspend the current computation (capturing a one-shot
    continuation) and hand control back to the event loop.  This lets
    protocol and OS models read like the sequential kernel code they model.

    All operations below must be called from within a process started with
    {!spawn} (or from code that was itself resumed by the engine); calling
    them outside a handler raises [Effect.Unhandled]. *)

val spawn : Sim.t -> ?delay:Time.span -> (unit -> unit) -> unit
(** [spawn sim f] schedules process [f] to start [delay] (default 0) from
    now.  Exceptions escaping [f] propagate out of {!Sim.run}. *)

val delay : Time.span -> unit
(** Suspends the calling process for the given simulated duration. *)

val await : (('a -> unit) -> unit) -> 'a
(** [await register] suspends the caller; [register] receives a [resume]
    function that must be called exactly once (at a later event) to wake the
    process with a value.  Calling [resume] a second time raises
    [Invalid_argument]. *)

val fork : (unit -> unit) -> unit
(** Starts a sibling process at the current instant and keeps running the
    caller.  The forked body runs when the caller next suspends (it is
    scheduled as a zero-delay event). *)

val yield : unit -> unit
(** Re-queues the caller behind already-scheduled same-instant events. *)
