(** The discrete-event simulator core.

    A simulator owns a virtual clock and a queue of timestamped events
    (thunks).  Events scheduled for the same instant fire in scheduling
    order (FIFO), which makes runs fully deterministic.

    Higher-level blocking-style code is built on top of this in
    {!Process}. *)

type t

type handle
(** A scheduled event that can still be cancelled. *)

val create : unit -> t
(** A fresh simulator with the clock at {!Time.zero}. *)

val now : t -> Time.t

val schedule : t -> after:Time.span -> (unit -> unit) -> handle
(** [schedule sim ~after f] arranges for [f ()] to run [after] nanoseconds
    from now.  [after] must be non-negative.
    @raise Invalid_argument on a negative delay. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle
(** Absolute-time variant; [at] must not be in the past. *)

val cancel : handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val is_cancelled : handle -> bool

val run : t -> unit
(** Runs events until the queue is empty.  Uncaught exceptions from event
    thunks propagate out of [run] (with the clock left at the failure
    instant). *)

val run_until : t -> limit:Time.t -> unit
(** Runs events with timestamp [<= limit]; the clock is advanced to [limit]
    if the queue drains or only later events remain. *)

val step : t -> bool
(** Runs a single event.  Returns [false] if the queue was empty. *)

val pending : t -> int
(** Number of scheduled (non-cancelled) events, for tests/diagnostics. *)

val events_executed : t -> int
(** Total count of events fired since creation. *)
