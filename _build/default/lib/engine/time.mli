(** Simulated time in integer nanoseconds.

    All simulation clocks and durations are integer nanoseconds carried in a
    native [int] (63 bits on 64-bit platforms, i.e. about 292 simulated
    years), which keeps event ordering exact and runs reproducible.  A
    separate [span] alias documents intent: [t] is a point on the simulation
    clock, [span] a duration. *)

type t = int
(** An absolute instant, in nanoseconds since the start of the simulation. *)

type span = int
(** A duration in nanoseconds.  Spans may be added to instants. *)

val zero : t
val epoch : t

(** {1 Constructors} *)

val ns : int -> span
val us : float -> span
val ms : float -> span
val s : float -> span

(** {1 Conversions} *)

val to_ns : span -> int
val to_us : span -> float
val to_ms : span -> float
val to_s : span -> float

(** {1 Arithmetic} *)

val add : t -> span -> t
val diff : t -> t -> span
val mul : span -> int -> span
val scale : span -> float -> span
val max : t -> t -> t
val min : t -> t -> t

val of_bytes_at_rate : bytes_per_s:float -> int -> span
(** [of_bytes_at_rate ~bytes_per_s n] is the time needed to move [n] bytes at
    the given rate, rounded up to a whole nanosecond. *)

val of_bits_at_rate : bits_per_s:float -> int -> span
(** Same as {!of_bytes_at_rate} but counting bits, for wire serialization. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Prints with an adaptive unit (ns, us, ms or s). *)

val pp_us : Format.formatter -> t -> unit
(** Prints as microseconds with two decimals, the paper's habitual unit. *)

val to_string : t -> string
