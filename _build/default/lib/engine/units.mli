(** Unit helpers shared by hardware models and reports. *)

val kib : int -> int
val mib : int -> int

val mbit_per_s : float -> float
(** Megabits per second → bytes per second (decimal mega, as in networking:
    1 Mbit/s = 10^6 bit/s). *)

val gbit_per_s : float -> float
val mbyte_per_s : float -> float

val to_mbit_per_s : bytes_per_s:float -> float
(** Bytes/s → Mbit/s, the unit of every bandwidth figure in the paper. *)

val bandwidth_mbps : bytes:int -> span:Time.span -> float
(** Achieved bandwidth in Mbit/s for [bytes] moved in [span]; 0 if the span
    is empty. *)
