(** Pipeline stage tracing, used to regenerate the paper's Figure 7 (the
    per-stage timing of a packet flowing through the CLIC path).

    A trace collects named stage intervals.  Stages may overlap (the send
    DMA overlaps the wire flight, for instance); the reporting code decides
    how to present them.  Tracing is cheap and can be left attached. *)

type t

type span = { label : string; start : Time.t; finish : Time.t }

val create : Sim.t -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> string -> Time.t -> Time.t -> unit
(** Record a completed stage explicitly. *)

val run : t -> string -> (unit -> 'a) -> 'a
(** [run t label f] times [f] (which may suspend) as one stage. *)

val mark : t -> string -> unit
(** A zero-length event marker. *)

val spans : t -> span list
(** Recorded spans in start order. *)

val clear : t -> unit

val duration : t -> string -> Time.span option
(** Total time of all spans with the given label. *)

val pp : Format.formatter -> t -> unit
