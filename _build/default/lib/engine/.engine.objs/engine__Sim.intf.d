lib/engine/sim.mli: Time
