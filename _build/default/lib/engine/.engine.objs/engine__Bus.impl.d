lib/engine/bus.ml: Resource Time
