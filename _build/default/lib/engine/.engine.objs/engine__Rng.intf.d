lib/engine/rng.mli:
