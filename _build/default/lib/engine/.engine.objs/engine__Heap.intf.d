lib/engine/heap.mli:
