lib/engine/trace.ml: Format List Sim String Time
