lib/engine/units.mli: Time
