lib/engine/mailbox.ml: Process Queue
