lib/engine/process.ml: Effect Sim Time
