lib/engine/process.mli: Sim Time
