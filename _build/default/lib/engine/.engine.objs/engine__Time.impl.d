lib/engine/time.ml: Float Format Printf Stdlib
