lib/engine/semaphore.mli:
