lib/engine/semaphore.ml: Process Queue
