lib/engine/bus.mli: Resource Sim Time
