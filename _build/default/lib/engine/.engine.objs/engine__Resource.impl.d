lib/engine/resource.ml: Process Queue Sim Time
