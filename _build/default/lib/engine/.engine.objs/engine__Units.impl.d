lib/engine/units.ml: Time
