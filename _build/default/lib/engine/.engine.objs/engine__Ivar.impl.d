lib/engine/ivar.ml: List Process
