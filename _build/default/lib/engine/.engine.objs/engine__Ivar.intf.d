lib/engine/ivar.mli:
