lib/engine/mailbox.mli:
