type 'a t = { items : 'a Queue.t; blocked : ('a -> unit) Queue.t }

let create () = { items = Queue.create (); blocked = Queue.create () }

let send t v =
  match Queue.take_opt t.blocked with
  | Some resume -> resume v
  | None -> Queue.add v t.items

let try_recv t = Queue.take_opt t.items

let recv t =
  match Queue.take_opt t.items with
  | Some v -> v
  | None -> Process.await (fun resume -> Queue.add resume t.blocked)

let length t = Queue.length t.items
let waiters t = Queue.length t.blocked
