(** A serially-reusable resource with two priority classes and utilization
    accounting.

    Models anything that serves one request at a time: a CPU, a bus, a DMA
    engine.  Requests are served FCFS within a class; the [`High] class (used
    for interrupt-level work on CPUs) always wins over [`Low] when the
    resource frees up.  Service is non-preemptive — an in-progress grant runs
    to completion, which matches the microsecond-scale work quanta of the
    modelled system.

    Busy time is accumulated so utilization over any measurement window can
    be reported (the paper's "CPU use" figures). *)

type t
type priority = [ `High | `Low ]

val create : Sim.t -> name:string -> t
val name : t -> string

val use : ?priority:priority -> t -> Time.span -> unit
(** [use r span] blocks the calling process until granted, then occupies the
    resource for [span] and releases it.  Zero-length spans still round-trip
    through the queue (preserving FCFS ordering). *)

val use_f : ?priority:priority -> t -> (unit -> 'a) -> 'a
(** [use_f r f] grants the resource, runs [f] (which may {!Process.delay} to
    model service time and returns a value), then releases.  The time spent
    inside [f] is accounted as busy time. *)

val is_busy : t -> bool
val queue_length : t -> int

(** {1 Accounting} *)

val busy_time : t -> Time.span
(** Total busy time since creation (or since the last {!reset_stats}). *)

val grants : t -> int
val reset_stats : t -> unit

val utilization : t -> since:Time.t -> float
(** Fraction of wall-clock busy in [\[since, now\]]; requires stats reset at
    or before [since] for an exact figure. *)
