(** Unbounded FIFO mailboxes between simulation processes.

    [send] never blocks; [recv] blocks the calling process until a message is
    available.  Messages are delivered in send order; competing receivers are
    served in arrival order. *)

type 'a t

val create : unit -> 'a t
val send : 'a t -> 'a -> unit

val recv : 'a t -> 'a
(** Blocks; must run inside a process. *)

val try_recv : 'a t -> 'a option
val length : 'a t -> int
(** Number of queued (undelivered) messages. *)

val waiters : 'a t -> int
(** Number of processes currently blocked in {!recv}. *)
