open Engine

let table fmt ~header ~rows () =
  let all = header :: rows in
  let cols = List.length header in
  let width i =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row i with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Format.fprintf fmt "%s%s  " cell
          (String.make (max 0 (w - String.length cell)) ' '))
      row;
    Format.fprintf fmt "@."
  in
  print_row header;
  Format.fprintf fmt "%s@."
    (String.make (List.fold_left ( + ) (2 * cols) widths) '-');
  List.iter print_row rows

let series_table fmt ~title ~x_label ~series =
  Format.fprintf fmt "@.%s@.%s@." title (String.make (String.length title) '=');
  let xs =
    List.sort_uniq compare
      (List.concat_map
         (fun s -> List.map fst (Stats.Series.points s))
         series)
  in
  let header = x_label :: List.map Stats.Series.name series in
  let rows =
    List.map
      (fun x ->
        Printf.sprintf "%.0f" x
        :: List.map
             (fun s ->
               match Stats.Series.y_at s ~x with
               | Some y -> Printf.sprintf "%.1f" y
               | None -> "-")
             series)
      xs
  in
  table fmt ~header ~rows ()

let bar v ~max:m ~width =
  if m <= 0. then ""
  else begin
    let n = int_of_float (Float.round (v /. m *. float_of_int width)) in
    String.make (max 0 (min width n)) '#'
  end

let section fmt title =
  Format.fprintf fmt "@.%s@.%s@." title (String.make (String.length title) '-')

(* An ASCII Gantt chart of trace spans: one row per span, bars positioned
   proportionally between the earliest start and the latest finish. *)
let timeline fmt ~width (spans : Trace.span list) =
  match spans with
  | [] -> ()
  | first :: _ ->
      let t0 =
        List.fold_left (fun acc s -> min acc s.Trace.start) first.Trace.start
          spans
      in
      let t1 =
        List.fold_left (fun acc s -> max acc s.Trace.finish)
          first.Trace.finish spans
      in
      let total = max 1 (Engine.Time.diff t1 t0) in
      let pos t = Engine.Time.diff t t0 * width / total in
      let label_w =
        List.fold_left (fun acc s -> max acc (String.length s.Trace.label)) 0
          spans
      in
      List.iter
        (fun s ->
          let a = pos s.Trace.start and b = max (pos s.Trace.start + 1) (pos s.Trace.finish) in
          let line = Bytes.make width ' ' in
          for i = a to min (width - 1) (b - 1) do
            Bytes.set line i '#'
          done;
          Format.fprintf fmt "%-*s |%s| %a@." label_w s.Trace.label
            (Bytes.to_string line) Engine.Time.pp_us
            (Engine.Time.diff s.Trace.finish s.Trace.start))
        spans;
      Format.fprintf fmt "%-*s  0%*s@." label_w "" width
        (Engine.Time.to_string total)

(* CSV rendering of figure series: header "x,<name>,..." then one row per
   x value; missing points are empty cells. *)
let series_csv ~x_label series =
  let buf = Buffer.create 256 in
  let xs =
    List.sort_uniq compare
      (List.concat_map
         (fun s -> List.map fst (Stats.Series.points s))
         series)
  in
  Buffer.add_string buf
    (String.concat "," (x_label :: List.map Stats.Series.name series));
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
      let cells =
        Printf.sprintf "%.0f" x
        :: List.map
             (fun s ->
               match Stats.Series.y_at s ~x with
               | Some y -> Printf.sprintf "%.2f" y
               | None -> "")
             series
      in
      Buffer.add_string buf (String.concat "," cells);
      Buffer.add_char buf '\n')
    xs;
  Buffer.contents buf
