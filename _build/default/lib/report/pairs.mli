(** {!Cluster.Measure.pair} constructors for the layered stacks of
    Figure 6: MPI over CLIC, MPI over TCP/IP, and PVM.

    (Raw CLIC and TCP pairs live in {!Cluster.Measure}.) *)

val mpi_clic : Cluster.Net.t -> a:int -> b:int -> Cluster.Measure.pair
val mpi_tcp : Cluster.Net.t -> a:int -> b:int -> Cluster.Measure.pair
val pvm : Cluster.Net.t -> a:int -> b:int -> Cluster.Measure.pair

val of_name :
  string -> Cluster.Net.t -> a:int -> b:int -> Cluster.Measure.pair
(** ["clic" | "tcp" | "mpi-clic" | "mpi-tcp" | "pvm"].
    @raise Invalid_argument on anything else. *)
