(** The paper's published numbers, as machine-readable reference data.

    Used by EXPERIMENTS.md generation and by integration tests that assert
    the reproduction preserves each comparative claim (who wins, roughly by
    how much, where crossovers fall) — not absolute equality, since the
    substrate is a calibrated simulator rather than the authors' testbed. *)

val zero_byte_latency_us : float
(** 36 us (Section 4). *)

val clic_asymptote_mtu9000_mbps : float
(** ~600 Mbit/s (Section 5). *)

val clic_asymptote_mtu1500_mbps : float
(** ~450 Mbit/s (Section 5). *)

val clic_over_tcp_best_case : float
(** CLIC gives "more than twofold" TCP's best bandwidth (Section 4). *)

val mpi_clic_over_mpi_tcp_worst_case : float
(** MPI-CLIC ≥ 1.5 × MPI-TCP for long messages (Section 4). *)

val half_bandwidth_size_clic : int
(** 4 KB: message size where CLIC reaches 50% of its asymptote. *)

val half_bandwidth_size_tcp : int
(** 16 KB for TCP/IP. *)

val fig7a_sender_module_driver_us : float
(** 0.7 + 4 us: CLIC_MODULE plus driver on the send side (Figure 7a). *)

val fig7a_bottom_half_us : float
(** 15 us for a 1400-byte packet (Figure 7a). *)

val fig7a_module_rx_us : float
(** 2 us (Figure 7a). *)

val fig7_interrupt_latency_us : float
(** ~20 us, reduced to ~5 us by the Figure 8b improvement. *)

val fig7b_interrupt_latency_us : float

val gamma_latency_us : float
(** 32 us with the GA620 NIC (Section 5's comparison). *)

val gamma_bandwidth_mbps : float
(** 768-824 Mbit/s (Section 5). *)

val mtu_interrupt_interval_us : float
(** One interrupt every ~12 us at MTU 1500 on saturated Gigabit Ethernet
    (Section 2's motivating arithmetic). *)
