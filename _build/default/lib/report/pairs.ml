open Cluster

let mpi_pair label transport_of c ~a ~b =
  let mk id =
    let node = Net.node c id in
    Mpi_layer.Mpi.create node.Node.env ~rank:id (transport_of node ~rank:id)
      ()
  in
  let ma = mk a and mb = mk b in
  let send m ~dst n = Mpi_layer.Mpi.send m ~dst ~tag:1 n in
  let recv m = ignore (Mpi_layer.Mpi.recv m ()) in
  {
    Measure.label;
    a_setup = (fun () -> ());
    b_setup = (fun () -> ());
    a_send = (fun n -> send ma ~dst:b n);
    a_recv = (fun _ -> recv ma);
    b_send = (fun n -> send mb ~dst:a n);
    b_recv = (fun _ -> recv mb);
  }

let mpi_clic c ~a ~b =
  let reg = Mpi_layer.Mpi_clic.registry () in
  mpi_pair "mpi-clic"
    (fun node ~rank ->
      Mpi_layer.Mpi_clic.transport reg node.Node.clic ~rank)
    c ~a ~b

let mpi_tcp c ~a ~b =
  let reg = Mpi_layer.Mpi_tcp.registry () in
  mpi_pair "mpi-tcp"
    (fun node ~rank -> Mpi_layer.Mpi_tcp.transport reg node.Node.tcp ~rank)
    c ~a ~b

let pvm c ~a ~b =
  let mk id =
    let node = Net.node c id in
    Mpi_layer.Pvm.create node.Node.env node.Node.udp ()
  in
  let pa = mk a and pb = mk b in
  {
    Measure.label = "pvm";
    a_setup = (fun () -> ());
    b_setup = (fun () -> ());
    a_send = (fun n -> Mpi_layer.Pvm.send pa ~dst:b ~tag:1 n);
    a_recv = (fun _ -> ignore (Mpi_layer.Pvm.recv pa ()));
    b_send = (fun n -> Mpi_layer.Pvm.send pb ~dst:a ~tag:1 n);
    b_recv = (fun _ -> ignore (Mpi_layer.Pvm.recv pb ()));
  }

let of_name name c ~a ~b =
  match name with
  | "clic" -> Measure.clic_pair c ~a ~b ()
  | "tcp" -> Measure.tcp_pair c ~a ~b ()
  | "mpi-clic" -> mpi_clic c ~a ~b
  | "mpi-tcp" -> mpi_tcp c ~a ~b
  | "pvm" -> pvm c ~a ~b
  | other -> invalid_arg (Printf.sprintf "Pairs.of_name: unknown %S" other)
