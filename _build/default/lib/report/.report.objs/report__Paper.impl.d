lib/report/paper.ml:
