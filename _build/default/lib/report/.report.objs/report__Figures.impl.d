lib/report/figures.ml: Array Clic Cluster Engine Float Format Hw Ivar List Measure Mpi_layer Net Node Os_model Pairs Paper Printf Process Proto Render Rivals Rng Sim Stats String Time Trace Workload
