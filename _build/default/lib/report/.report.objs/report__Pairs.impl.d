lib/report/pairs.ml: Cluster Measure Mpi_layer Net Node Printf
