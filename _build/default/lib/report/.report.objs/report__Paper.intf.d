lib/report/paper.mli:
