lib/report/figures.mli: Engine Format Stats
