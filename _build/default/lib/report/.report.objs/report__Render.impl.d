lib/report/render.ml: Buffer Bytes Engine Float Format List Printf Stats String Trace
