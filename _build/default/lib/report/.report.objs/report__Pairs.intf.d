lib/report/pairs.mli: Cluster
