lib/report/render.mli: Engine Format Stats
