(** ASCII rendering of figure series and tables. *)

open Engine

val table :
  Format.formatter ->
  header:string list ->
  rows:string list list ->
  unit ->
  unit
(** Column-aligned table with a rule under the header. *)

val series_table :
  Format.formatter ->
  title:string ->
  x_label:string ->
  series:Stats.Series.t list ->
  unit
(** One row per x value (union of all series), one column per series;
    missing points print as "-".  Values are printed with one decimal. *)

val bar : float -> max:float -> width:int -> string
(** A proportional ASCII bar, for quick visual curve shapes. *)

val section : Format.formatter -> string -> unit
(** An underlined section heading. *)

val timeline : Format.formatter -> width:int -> Engine.Trace.span list -> unit
(** An ASCII Gantt chart of trace spans (used by fig7's pipeline view). *)

val series_csv : x_label:string -> Engine.Stats.Series.t list -> string
(** CSV text for a set of series: header then one row per x value, empty
    cells where a series has no point. *)
