type t = {
  capacity : int;
  mutable used : int;
  mutable high_water : int;
  mutable failed : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Kmem.create: capacity <= 0";
  { capacity; used = 0; high_water = 0; failed = 0 }

let try_alloc t n =
  if n < 0 then invalid_arg "Kmem.try_alloc: negative size";
  if t.used + n <= t.capacity then begin
    t.used <- t.used + n;
    if t.used > t.high_water then t.high_water <- t.used;
    true
  end
  else begin
    t.failed <- t.failed + 1;
    false
  end

let free t n =
  if n < 0 || n > t.used then invalid_arg "Kmem.free: bad size";
  t.used <- t.used - n

let in_use t = t.used
let capacity t = t.capacity
let high_water t = t.high_water
let failed_allocs t = t.failed
