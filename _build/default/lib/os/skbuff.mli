(** The kernel socket-buffer structure ([SK_BUFF]).

    CLIC's 0-copy send hinges on the sk_buff fragment list: the driver can
    hand the NIC a scatter-gather descriptor whose fragments point straight
    into user memory, so the NIC bus-masters the data out without the CPU
    ever copying it.  We model the structure's shape (header area plus a
    fragment list tagged with the memory region each piece lives in) and
    its accounting; the actual data movement costs live in the CPU, bus and
    NIC models. *)

type region = User_memory | Kernel_memory

type fragment = { region : region; bytes : int }

type t = {
  header_bytes : int;  (** protocol headers prepended by the stack *)
  fragments : fragment list;  (** data fragments, in order *)
}

val create : header_bytes:int -> fragment list -> t
(** @raise Invalid_argument on negative sizes. *)

val of_user : header_bytes:int -> int -> t
(** One fragment living in user memory (the 0-copy send shape). *)

val of_kernel : header_bytes:int -> int -> t
(** One fragment staged in kernel memory (the 1-copy send shape). *)

val data_bytes : t -> int
val total_bytes : t -> int
(** Headers plus data: what the NIC must fetch. *)

val user_bytes : t -> int
(** Bytes that still live in user memory (pinned during DMA). *)

val is_zero_copy : t -> bool
(** True when no fragment was staged into kernel memory. *)
