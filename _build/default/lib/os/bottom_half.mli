(** Linux-style bottom halves (deferred interrupt work).

    An ISR queues work here and returns quickly; the bottom-half pump runs
    the queued thunks in order, at interrupt priority on the CPU but only
    after a dispatch delay (the kernel's do_bottom_half walk the paper's
    Figure 8a shows between the driver ISR and CLIC_MODULE).  This is the
    stage the paper's proposed improvement (Figure 8b) removes by calling
    the protocol module directly from the ISR. *)

open Engine

type t

val create : Sim.t -> cpu:Cpu.t -> ?dispatch_latency:Time.span -> unit -> t
(** Default dispatch latency: 1 us. *)

val schedule : t -> (unit -> unit) -> unit
(** Enqueue a thunk; thunks run FIFO.  The thunk should charge its CPU work
    at [`High] priority. *)

val executed : t -> int
val pending : t -> int
