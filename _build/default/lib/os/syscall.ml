open Engine

type t = {
  cpu : Cpu.t;
  enter_cost : Time.span;
  leave_cost : Time.span;
  mutable calls : int;
}

let create ?(enter = Time.us 0.35) ?(leave = Time.us 0.30) cpu =
  { cpu; enter_cost = enter; leave_cost = leave; calls = 0 }

let enter t =
  t.calls <- t.calls + 1;
  Cpu.work t.cpu t.enter_cost

let leave t = Cpu.work t.cpu t.leave_cost

let wrap t f =
  enter t;
  match f () with
  | v ->
      leave t;
      v
  | exception exn ->
      leave t;
      raise exn

let round_trip t = t.enter_cost + t.leave_cost
let calls t = t.calls
