(** A host processor.

    A thin specialization of {!Engine.Resource} with two priority levels:
    interrupt-context work ([`High]: ISRs, bottom halves) and task-context
    work ([`Low]: system calls, protocol processing, user code).  Copies
    performed by the CPU also occupy the memory bus, so they steal memory
    bandwidth from concurrent DMA — one of the paper's stated costs of extra
    data copies. *)

open Engine

type t

val create : Sim.t -> name:string -> ?copy_bytes_per_s:float -> unit -> t
(** [copy_bytes_per_s] is the effective memory-copy rate of kernel copy
    routines on cache-cold data (default 300 MB/s, typical of the paper's
    1.5 GHz PC era). *)

val name : t -> string
val resource : t -> Resource.t

val work : ?priority:Resource.priority -> t -> Time.span -> unit
(** Occupies the CPU for the span (blocking; default task priority). *)

val work_sliced :
  ?priority:Resource.priority -> ?quantum:Time.span -> t -> Time.span -> unit
(** Like {!work}, but released and re-acquired every [quantum] (default
    50 us): models the kernel's preemption points, letting interrupt work
    and other tasks interleave with long computations.  {!copy} slices
    implicitly. *)

val copy :
  ?priority:Resource.priority -> ?bytes_per_s:float -> t -> membus:Bus.t ->
  int -> unit
(** [copy cpu ~membus n] models a CPU memory-to-memory copy of [n] bytes:
    the CPU is held for [n / rate] while [2n] bytes cross the memory bus
    concurrently.  [bytes_per_s] overrides the CPU's default copy rate. *)

val copy_time : ?bytes_per_s:float -> t -> int -> Time.span

val utilization : t -> since:Time.t -> float
val busy_time : t -> Time.span
val reset_stats : t -> unit
