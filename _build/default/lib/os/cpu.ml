open Engine

type t = { name : string; res : Resource.t; copy_bytes_per_s : float }

let create sim ~name ?(copy_bytes_per_s = 300e6) () =
  if copy_bytes_per_s <= 0. then invalid_arg "Cpu.create: copy rate <= 0";
  { name; res = Resource.create sim ~name; copy_bytes_per_s }

let name t = t.name
let resource t = t.res
let work ?priority t span = Resource.use ?priority t.res span

(* Long CPU work is preemptible at quantum boundaries: slicing lets
   higher-priority interrupt work — and other tasks — interleave, as the
   real kernel's preemption points do. *)
let default_quantum = Time.us 50.

let work_sliced ?priority ?(quantum = default_quantum) t span =
  if quantum <= 0 then invalid_arg "Cpu.work_sliced: quantum <= 0";
  let rec go remaining =
    if remaining > 0 then begin
      Resource.use ?priority t.res (min quantum remaining);
      go (remaining - quantum)
    end
  in
  go span

let copy_time ?bytes_per_s t n =
  let rate = Option.value bytes_per_s ~default:t.copy_bytes_per_s in
  Time.of_bytes_at_rate ~bytes_per_s:rate n

let copy ?priority ?bytes_per_s t ~membus n =
  if n < 0 then invalid_arg "Cpu.copy: negative size"
  else if n > 0 then begin
    (* The memory-bus crossing (read + write) happens while the CPU is
       held; neither the CPU nor later bus users see it as free. *)
    Process.fork (fun () -> Bus.transfer membus (Hw.Membus.copy_bytes n));
    work_sliced ?priority t (copy_time ?bytes_per_s t n)
  end

let utilization t ~since = Resource.utilization t.res ~since
let busy_time t = Resource.busy_time t.res
let reset_stats t = Resource.reset_stats t.res
