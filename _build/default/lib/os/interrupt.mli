(** The interrupt controller.

    A raised IRQ waits the hardware dispatch latency (PIC/APIC delivery,
    pipeline drain, vectoring — the paper cites PCI 2.1 delays of
    microseconds), then runs its service routine on the CPU at interrupt
    priority, ahead of any queued task-level work.  The ISR itself is
    process code: it performs its per-packet work with {!Cpu.work} and may
    block on buses. *)

open Engine

type t

val create : Sim.t -> cpu:Cpu.t -> ?dispatch_latency:Time.span -> unit -> t
(** Default dispatch latency: 5 us. *)

val raise_irq : t -> isr:(unit -> unit) -> unit
(** Asynchronous: returns immediately; the ISR runs after the dispatch
    latency, serialized with other interrupt-level work on the CPU. *)

val dispatch_latency : t -> Time.span
val irqs_delivered : t -> int
val time_in_isr : t -> Time.span
