open Engine

type t = {
  sim : Sim.t;
  thunk : unit -> unit;
  mutable handle : Sim.handle option;
}

let arm t span =
  let h =
    Sim.schedule t.sim ~after:span (fun () ->
        t.handle <- None;
        t.thunk ())
  in
  t.handle <- Some h

let after sim span thunk =
  let t = { sim; thunk; handle = None } in
  arm t span;
  t

let cancel t =
  match t.handle with
  | Some h ->
      Sim.cancel h;
      t.handle <- None
  | None -> ()

let restart t span =
  cancel t;
  arm t span

let is_pending t = t.handle <> None
