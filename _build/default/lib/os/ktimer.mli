(** Kernel timers (retransmission, delayed ACKs, coalescing holdoffs).

    A thin, cancellable wrapper over the simulator clock with restart
    support, mirroring the add_timer/mod_timer/del_timer kernel API the
    modelled protocols use. *)

open Engine

type t

val after : Sim.t -> Time.span -> (unit -> unit) -> t
(** Arms a one-shot timer. *)

val cancel : t -> unit
(** Idempotent; cancelling a fired timer is a no-op. *)

val restart : t -> Time.span -> unit
(** Re-arms with a new expiry from now, whether fired, pending or
    cancelled. *)

val is_pending : t -> bool
