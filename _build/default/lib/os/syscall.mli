(** System-call entry/exit costs.

    CLIC keeps the OS in the communication path: every send/receive is a
    system call (INT 80h on the paper's Pentiums).  The paper measures the
    combined enter+leave overhead at about 0.65 us on a 1.5 GHz PC and
    argues it is an acceptable price (< 2% of a message time) for retaining
    OS services.  *)

open Engine

type t

val create : ?enter:Time.span -> ?leave:Time.span -> Cpu.t -> t
(** Defaults: 0.35 us enter, 0.30 us leave (0.65 us round trip). *)

val enter : t -> unit
(** Charges the user→kernel transition on the CPU (blocking). *)

val leave : t -> unit

val wrap : t -> (unit -> 'a) -> 'a
(** [wrap t f] runs [f] between {!enter} and {!leave}; the exit cost is paid
    even if [f] raises. *)

val round_trip : t -> Time.span
val calls : t -> int
