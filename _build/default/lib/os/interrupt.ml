open Engine

type t = {
  sim : Sim.t;
  cpu : Cpu.t;
  dispatch_latency : Time.span;
  mutable irqs : int;
  mutable isr_time : Time.span;
}

let create sim ~cpu ?(dispatch_latency = Time.us 5.) () =
  { sim; cpu; dispatch_latency; irqs = 0; isr_time = 0 }

(* The ISR body charges its CPU work itself at [`High] priority (via
   [Cpu.work ~priority:`High]); the controller only models delivery latency
   and accounts time.  Acquiring the CPU per work item (rather than for the
   whole ISR) models the preemption points real ISRs have and avoids
   self-deadlock on the CPU resource. *)
let raise_irq t ~isr =
  t.irqs <- t.irqs + 1;
  Process.spawn t.sim ~delay:t.dispatch_latency (fun () ->
      let started = Sim.now t.sim in
      isr ();
      t.isr_time <- t.isr_time + Time.diff (Sim.now t.sim) started)

let dispatch_latency t = t.dispatch_latency
let irqs_delivered t = t.irqs
let time_in_isr t = t.isr_time
