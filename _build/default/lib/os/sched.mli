(** Task blocking and wakeup through the OS scheduler.

    CLIC deliberately uses full system calls (not the lightweight calls of
    GAMMA) so that the scheduler runs on return to user mode: when several
    messages are pending, letting the scheduler pick the right process
    serves them faster.  This module charges that choice's costs: a blocked
    receiver is woken by kernel code (ISR, bottom half or protocol module),
    paying a wakeup/context-switch cost on the CPU before the task resumes.

    A wait slot is single-use; create one per blocking occasion. *)

open Engine

type t

val create : Sim.t -> cpu:Cpu.t -> ?switch_cost:Time.span -> unit -> t
(** Default context-switch / wakeup cost: 1 us. *)

type slot

val slot : t -> slot

val wait : slot -> unit
(** Blocks the calling process until {!wake}.  If {!wake} already happened,
    returns after the switch cost only.  @raise Invalid_argument if the slot
    is already being waited on. *)

val wake : slot -> unit
(** Marks the slot runnable and charges the wakeup cost on the waker's CPU
    (at its current context's priority — callers in interrupt context pass
    work through anyway).  Waking an already-woken slot is a no-op. *)

val switches : t -> int
val switch_cost : t -> Time.span
