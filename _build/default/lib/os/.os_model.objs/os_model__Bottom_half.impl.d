lib/os/bottom_half.ml: Cpu Engine Process Queue Sim Time
