lib/os/bottom_half.mli: Cpu Engine Sim Time
