lib/os/sched.ml: Cpu Engine Process Sim Time
