lib/os/cpu.ml: Bus Engine Hw Option Process Resource Time
