lib/os/interrupt.mli: Cpu Engine Sim Time
