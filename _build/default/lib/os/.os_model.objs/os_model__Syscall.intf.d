lib/os/syscall.mli: Cpu Engine Time
