lib/os/interrupt.ml: Cpu Engine Process Sim Time
