lib/os/driver.ml: Bottom_half Cpu Engine Eth_frame Hw Interrupt List Nic Sim Skbuff Time Trace
