lib/os/skbuff.ml: List
