lib/os/cpu.mli: Bus Engine Resource Sim Time
