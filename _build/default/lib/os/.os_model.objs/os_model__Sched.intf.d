lib/os/sched.mli: Cpu Engine Sim Time
