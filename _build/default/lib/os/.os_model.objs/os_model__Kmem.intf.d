lib/os/kmem.mli:
