lib/os/ktimer.mli: Engine Sim Time
