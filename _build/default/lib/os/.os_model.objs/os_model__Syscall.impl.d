lib/os/syscall.ml: Cpu Engine Time
