lib/os/ktimer.ml: Engine Sim
