lib/os/skbuff.mli:
