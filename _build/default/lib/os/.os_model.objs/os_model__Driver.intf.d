lib/os/driver.mli: Bottom_half Cpu Engine Eth_frame Hw Interrupt Mac Nic Sim Skbuff Time Trace
