lib/os/kmem.ml:
