type region = User_memory | Kernel_memory
type fragment = { region : region; bytes : int }
type t = { header_bytes : int; fragments : fragment list }

let create ~header_bytes fragments =
  if header_bytes < 0 then invalid_arg "Skbuff.create: negative header";
  List.iter
    (fun f -> if f.bytes < 0 then invalid_arg "Skbuff.create: negative frag")
    fragments;
  { header_bytes; fragments }

let of_user ~header_bytes n =
  create ~header_bytes [ { region = User_memory; bytes = n } ]

let of_kernel ~header_bytes n =
  create ~header_bytes [ { region = Kernel_memory; bytes = n } ]

let data_bytes t = List.fold_left (fun acc f -> acc + f.bytes) 0 t.fragments
let total_bytes t = t.header_bytes + data_bytes t

let user_bytes t =
  List.fold_left
    (fun acc f -> match f.region with User_memory -> acc + f.bytes
                                    | Kernel_memory -> acc)
    0 t.fragments

let is_zero_copy t =
  List.for_all (fun f -> f.region = User_memory || f.bytes = 0) t.fragments
