(** A bounded kernel buffer pool.

    Models the system memory CLIC stages data in when the NIC cannot accept
    it immediately, and the kernel-side receive buffers packets wait in
    until a process asks for them.  Exhaustion makes callers fall back
    (blocking, or dropping for unreliable stacks) rather than allocating
    unboundedly. *)

type t

val create : capacity:int -> t
(** [capacity] in bytes; must be positive. *)

val try_alloc : t -> int -> bool
(** Takes [n] bytes if available. *)

val free : t -> int -> unit
(** @raise Invalid_argument when freeing more than is allocated. *)

val in_use : t -> int
val capacity : t -> int
val high_water : t -> int
val failed_allocs : t -> int
