let bcast_tag = 0x7ffe

let clic_bcast_root clic ~peers ~port n =
  Clic.Api.broadcast clic ~port n;
  (* Tiny reliable confirmations flow back on the ordinary channel. *)
  List.iter (fun _ -> ignore (Clic.Api.recv clic ~port)) peers

let clic_bcast_peer clic ~root ~port =
  ignore (Clic.Api.recv clic ~port);
  Clic.Api.send clic ~dst:root ~port 1

(* The canonical binomial-tree broadcast (as in MPICH): each rank receives
   from the peer that differs in its lowest set relative bit, then forwards
   to the ranks that differ in each lower bit. *)
let mpi_bcast mpi ~rank ~root ~size n =
  if size <= 0 then invalid_arg "Collectives.mpi_bcast: size <= 0";
  let rel = ((rank - root) mod size + size) mod size in
  let mask = ref 1 in
  let recv_mask = ref 0 in
  (try
     while !mask < size do
       if rel land !mask <> 0 then begin
         ignore (Mpi.recv mpi ~tag:bcast_tag ());
         recv_mask := !mask;
         raise Exit
       end;
       mask := !mask lsl 1
     done
   with Exit -> ());
  let mask = ref (if rel = 0 then
                    let rec top b = if b * 2 >= size then b else top (b * 2) in
                    if size = 1 then 0 else top 1
                  else !recv_mask lsr 1)
  in
  while !mask > 0 do
    if rel + !mask < size then begin
      let dst = (rank + !mask) mod size in
      Mpi.send mpi ~dst ~tag:bcast_tag n
    end;
    mask := !mask lsr 1
  done


let barrier_tag = 0x7ffd
let gather_tag = 0x7ffc
let allreduce_tag = 0x7ffb

(* Dissemination barrier: ceil(log2 size) rounds; in round k, rank r
   signals (r + 2^k) mod size and waits for (r - 2^k) mod size. *)
let barrier mpi ~rank ~size =
  if size > 1 then begin
    let k = ref 1 in
    while !k < size do
      let dst = (rank + !k) mod size in
      let src = ((rank - !k) mod size + size) mod size in
      let req = Mpi.irecv mpi ~src ~tag:barrier_tag () in
      Mpi.send mpi ~dst ~tag:barrier_tag 1;
      ignore (Mpi.wait req);
      k := !k * 2
    done
  end

(* Linear gather: every non-root rank sends its [n] bytes to the root,
   which receives size-1 contributions (any order). *)
let gather mpi ~rank ~root ~size n =
  if rank = root then
    for _ = 1 to size - 1 do
      ignore (Mpi.recv mpi ~tag:gather_tag ())
    done
  else Mpi.send mpi ~dst:root ~tag:gather_tag n

(* Ring allreduce: 2(size-1) steps of n/size-byte chunks — the classic
   bandwidth-optimal algorithm, here counting only the communication. *)
let allreduce mpi ~rank ~size n =
  if size > 1 && n > 0 then begin
    let chunk = max 1 (n / size) in
    let right = (rank + 1) mod size in
    let left = ((rank - 1) mod size + size) mod size in
    for _step = 1 to 2 * (size - 1) do
      let req = Mpi.irecv mpi ~src:left ~tag:allreduce_tag () in
      Mpi.send mpi ~dst:right ~tag:allreduce_tag chunk;
      ignore (Mpi.wait req)
    done
  end
