(** The MPI-on-CLIC transport (the paper's "MPI-CLIC").

    Envelopes and payload ride a reserved CLIC port; a progress process on
    each rank receives CLIC messages and feeds the matching engine.  MPI
    point-to-point maps directly onto CLIC's reliable ordered messages, so
    the transport adds only the 32-byte envelope to each message — which is
    why Figure 6 shows MPI-CLIC hugging the raw CLIC curve. *)

val mpi_port : int
(** CLIC port reserved for MPI traffic (90). *)

type registry
(** Shared envelope registry for one MPI world (one per cluster). *)

val registry : unit -> registry

val transport : registry -> Clic.Api.t -> rank:int -> Mpi.transport
(** Build rank [rank]'s transport over its node's CLIC endpoint.  Ranks
    are node ids. *)
