(** MPI point-to-point semantics over a pluggable transport.

    The paper layers LAM-MPI over both CLIC (MPI-CLIC) and TCP/IP (the
    stock LAM) and compares them in Figure 6.  This module implements the
    part those curves exercise: standard-mode send/receive with
    (source, tag) matching, an eager protocol for small messages and a
    rendezvous protocol (RTS/CTS) above a threshold, plus the library's
    own per-call overhead and 32-byte envelopes.

    Transports ({!Mpi_clic}, {!Mpi_tcp}) move envelopes and payload bytes
    between ranks; envelope metadata rides out-of-band in the simulator
    while its cost travels with the message bytes. *)

open Engine

type envelope = {
  e_src : int;
  e_tag : int;
  e_bytes : int;  (** application payload size *)
  e_kind : kind;
}

and kind = Eager | Rts of int | Cts of int | Rendez_data of int

val envelope_bytes : int
(** 32: charged on every transport message. *)

type transport = {
  t_xmit : dst:int -> envelope -> unit;
      (** Move one envelope plus its payload to [dst]; blocking is allowed
          (called from rank processes).  Reliable and ordered per pair. *)
  t_start : deliver:(envelope -> unit) -> unit;
      (** Start the receive progress machinery; [deliver] runs in a
          task-context process on the receiving rank. *)
}

type params = {
  eager_threshold : int;  (** bytes; larger messages use rendezvous *)
  per_call : Time.span;  (** MPI library overhead per send/recv call *)
  unexpected_copy : bool;
      (** copy unexpected eager messages through a bounce buffer *)
}

val default_params : params
(** 16 KiB threshold, 3 us per call. *)

type t
(** One rank's MPI context. *)

val create :
  Proto.Hostenv.t -> rank:int -> transport -> ?params:params -> unit -> t

val rank : t -> int

val send : t -> dst:int -> tag:int -> int -> unit
(** Standard-mode blocking send of [n] bytes. *)

val recv : t -> ?src:int -> ?tag:int -> unit -> envelope
(** Blocking receive; omitted [src]/[tag] act as wildcards.  Matching is
    FIFO among queued candidates, as MPI requires. *)

val iprobe : t -> ?src:int -> ?tag:int -> unit -> bool
(** Non-blocking check for a matching unexpected message. *)

(** {1 Non-blocking operations} *)

type request

val isend : t -> dst:int -> tag:int -> int -> request
(** Starts a standard-mode send; completion means what {!send}'s return
    means (handed over / rendezvous finished). *)

val irecv : t -> ?src:int -> ?tag:int -> unit -> request

val wait : request -> envelope option
(** Blocks until the request completes; [Some envelope] for receives,
    [None] for sends. *)

val test : request -> bool
(** Non-blocking completion check. *)

val unexpected_queued : t -> int
val sends : t -> int
val receives : t -> int
