(** A PVM-style messaging layer: daemon-routed messages over UDP.

    Stock PVM routes task→task traffic through the pvmd daemons: the task
    hands the message to its local daemon (a copy and a context switch),
    the daemons exchange ~4 KB UDP fragments under their own stop-and-wait
    style reliability protocol, and the remote daemon hands the message to
    the destination task (another copy and wakeup).  Every message
    therefore pays two extra copies, daemon scheduling, small fragments and
    ack round trips — the reason PVM is the lowest curve in the paper's
    Figure 6. *)

open Engine

type params = {
  fragment_bytes : int;  (** daemon fragment size (PVM default ~4080) *)
  daemon_window : int;  (** fragments in flight between daemons *)
  task_to_daemon : Time.span;  (** handoff cost, each side, per message *)
  per_fragment : Time.span;  (** daemon processing per fragment, each side *)
  retransmit_timeout : Time.span;
}

val default_params : params

type t
(** One node's PVM instance (task endpoint + daemon). *)

val create : Proto.Hostenv.t -> Proto.Udp.t -> ?params:params -> unit -> t

val send : t -> dst:int -> tag:int -> int -> unit
(** Blocking until handed to the local daemon. *)

val recv : t -> ?tag:int -> unit -> int * int * int
(** Blocking; returns (src, tag, bytes). *)

val messages_routed : t -> int
(** Messages this node's daemon forwarded or delivered. *)
