(** The MPI-on-TCP/IP transport (stock LAM-MPI in the paper's Figure 6).

    Each rank listens on a well-known port; pairwise connections are
    established lazily on first send.  Every transport message travels as a
    32-byte envelope header followed by the payload on the byte stream, so
    MPI-TCP inherits the whole TCP/IP cost column — which is why its curve
    sits far below MPI-CLIC.  (Envelope contents ride out-of-band in the
    simulator, paired with the stream's byte counts; see the registry
    comment in the implementation.) *)

val base_port : int
(** Rank r listens on [base_port + r] (6000+r). *)

type registry
val registry : unit -> registry

val transport : registry -> Proto.Tcp.t -> rank:int -> Mpi.transport
