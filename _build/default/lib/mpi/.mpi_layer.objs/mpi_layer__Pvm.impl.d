lib/mpi/pvm.ml: Cpu Engine Hashtbl Ivar Ktimer Mailbox Os_model Process Proto Queue Sched Semaphore Time
