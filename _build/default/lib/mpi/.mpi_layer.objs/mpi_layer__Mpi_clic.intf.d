lib/mpi/mpi_clic.mli: Clic Mpi
