lib/mpi/mpi_tcp.ml: Engine Hashtbl Mailbox Mpi Process Proto
