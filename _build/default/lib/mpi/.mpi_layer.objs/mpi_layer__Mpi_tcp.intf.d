lib/mpi/mpi_tcp.mli: Mpi Proto
