lib/mpi/mpi.mli: Engine Proto Time
