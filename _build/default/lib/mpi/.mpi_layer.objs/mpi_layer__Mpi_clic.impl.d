lib/mpi/mpi_clic.ml: Clic Engine Hashtbl Mpi Proto Queue
