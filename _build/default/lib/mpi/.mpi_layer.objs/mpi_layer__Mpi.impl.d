lib/mpi/mpi.ml: Cpu Engine Hashtbl Ivar List Os_model Process Proto Queue Time
