lib/mpi/collectives.mli: Clic Mpi
