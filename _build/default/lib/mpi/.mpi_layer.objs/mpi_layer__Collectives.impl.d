lib/mpi/collectives.ml: Clic List Mpi
