lib/mpi/pvm.mli: Engine Proto Time
