(** Broadcast collectives over the two stacks.

    CLIC is built directly on the Ethernet data-link layer and inherits
    its hardware multicast/broadcast: one transmission reaches every node,
    confirmed by tiny per-receiver acknowledgements.  An MPI-over-TCP
    broadcast has no such primitive and forwards point-to-point along a
    binomial tree.  The [ext3] experiment compares the two. *)

val clic_bcast_root :
  Clic.Api.t -> peers:int list -> port:int -> int -> unit
(** Broadcast [n] bytes from this node and block until every peer's
    confirmation message arrives (run in a process on the root). *)

val clic_bcast_peer : Clic.Api.t -> root:int -> port:int -> unit
(** Receive one broadcast and confirm it (run on each peer). *)

val mpi_bcast : Mpi.t -> rank:int -> root:int -> size:int -> int -> unit
(** Binomial-tree broadcast of [n] bytes over MPI point-to-point; call on
    every rank with the world [size]. *)

val barrier : Mpi.t -> rank:int -> size:int -> unit
(** Dissemination barrier (ceil(log2 size) rounds); call on every rank. *)

val gather : Mpi.t -> rank:int -> root:int -> size:int -> int -> unit
(** Linear gather of [n] bytes per rank to [root]. *)

val allreduce : Mpi.t -> rank:int -> size:int -> int -> unit
(** Ring allreduce over an [n]-byte buffer: 2(size-1) pipelined
    chunk exchanges; models the communication only. *)
