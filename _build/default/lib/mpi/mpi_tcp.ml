open Engine

let base_port = 6000

(* Envelope metadata mirrors the 32-byte headers that precede each payload
   on the byte stream; the stream itself carries only byte counts.  One
   mailbox per directed rank pair keeps metadata and bytes in lockstep:
   the sender enqueues the envelope before writing its bytes, and the
   reader dequeues the envelope first and then consumes exactly that
   message's bytes — so framing can never drift, whatever the underlying
   TCP does (retransmissions, resegmentation). *)
type registry = (int * int, Mpi.envelope Mailbox.t) Hashtbl.t

let registry () : registry = Hashtbl.create 16

let queue_of reg ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt reg key with
  | Some q -> q
  | None ->
      let q = Mailbox.create () in
      Hashtbl.add reg key q;
      q

let payload_bytes (env : Mpi.envelope) =
  match env.Mpi.e_kind with
  | Mpi.Eager | Mpi.Rendez_data _ -> env.Mpi.e_bytes
  | Mpi.Rts _ | Mpi.Cts _ -> 0

let transport reg tcp ~rank =
  let hostenv = Proto.Ethernet.env (Proto.Ip.ethernet (Proto.Tcp.ip_of tcp)) in
  let sim = hostenv.Proto.Hostenv.sim in
  let conns = Hashtbl.create 8 in
  Proto.Tcp.listen tcp ~port:(base_port + rank);
  let connect_to dst =
    match Hashtbl.find_opt conns dst with
    | Some c -> c
    | None ->
        let c = Proto.Tcp.connect tcp ~dst ~port:(base_port + dst) in
        Hashtbl.add conns dst c;
        c
  in
  {
    Mpi.t_xmit =
      (fun ~dst env ->
        let conn = connect_to dst in
        Mailbox.send (queue_of reg ~src:rank ~dst) env;
        Proto.Tcp.send conn (Mpi.envelope_bytes + payload_bytes env));
    t_start =
      (fun ~deliver ->
        (* Accept loop: one reader process per incoming connection. *)
        Process.spawn sim (fun () ->
            let rec accept_loop () =
              let conn = Proto.Tcp.accept tcp ~port:(base_port + rank) in
              let src = Proto.Tcp.peer_of conn in
              Process.fork (fun () ->
                  let q = queue_of reg ~src ~dst:rank in
                  let rec read_loop () =
                    let env = Mailbox.recv q in
                    Proto.Tcp.recv conn
                      (Mpi.envelope_bytes + payload_bytes env);
                    deliver env;
                    read_loop ()
                  in
                  read_loop ());
              accept_loop ()
            in
            accept_loop ()));
  }
