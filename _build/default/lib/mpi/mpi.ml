open Engine
open Os_model

type envelope = {
  e_src : int;
  e_tag : int;
  e_bytes : int;
  e_kind : kind;
}

and kind = Eager | Rts of int | Cts of int | Rendez_data of int

let envelope_bytes = 32

type transport = {
  t_xmit : dst:int -> envelope -> unit;
  t_start : deliver:(envelope -> unit) -> unit;
}

type params = {
  eager_threshold : int;
  per_call : Time.span;
  unexpected_copy : bool;
}

let default_params =
  { eager_threshold = 16384; per_call = Time.us 3.; unexpected_copy = true }

type posted = {
  want_src : int option;
  want_tag : int option;
  result : envelope Ivar.t;
}

type t = {
  env : Proto.Hostenv.t;
  rank : int;
  transport : transport;
  p : params;
  mutable posted : posted list;  (* FIFO order *)
  unexpected : envelope Queue.t;
  pending_cts : (int, unit Ivar.t) Hashtbl.t;  (* sender side, by rendezvous id *)
  pending_data : (int, envelope Ivar.t) Hashtbl.t;  (* receiver side *)
  mutable next_rendez : int;
  mutable sends : int;
  mutable receives : int;
}

let cpu t = t.env.Proto.Hostenv.cpu
let rank t = t.rank

let matches p (env : envelope) =
  (match p.want_src with None -> true | Some s -> s = env.e_src)
  && match p.want_tag with None -> true | Some g -> g = env.e_tag

(* Remove and return the first posted receive matching the envelope. *)
let take_posted t env =
  let rec go acc = function
    | [] -> None
    | p :: rest when matches p env ->
        t.posted <- List.rev_append acc rest;
        Some p
    | p :: rest -> go (p :: acc) rest
  in
  go [] t.posted

let send_cts t ~dst id =
  t.transport.t_xmit ~dst
    { e_src = t.rank; e_tag = 0; e_bytes = 0; e_kind = Cts id }

(* Runs in the progress process of the receiving rank. *)
let deliver t (env : envelope) =
  match env.e_kind with
  | Cts id -> (
      match Hashtbl.find_opt t.pending_cts id with
      | Some iv ->
          Hashtbl.remove t.pending_cts id;
          Ivar.fill iv ()
      | None -> ())
  | Rendez_data id -> (
      match Hashtbl.find_opt t.pending_data id with
      | Some iv ->
          Hashtbl.remove t.pending_data id;
          Ivar.fill iv env
      | None -> Queue.add env t.unexpected)
  | Eager -> (
      match take_posted t env with
      | Some p -> Ivar.fill p.result env
      | None -> Queue.add env t.unexpected)
  | Rts id -> (
      match take_posted t env with
      | Some p ->
          Hashtbl.replace t.pending_data id p.result;
          send_cts t ~dst:env.e_src id
      | None -> Queue.add env t.unexpected)

let create hostenv ~rank transport ?(params = default_params) () =
  let t =
    {
      env = hostenv;
      rank;
      transport;
      p = params;
      posted = [];
      unexpected = Queue.create ();
      pending_cts = Hashtbl.create 8;
      pending_data = Hashtbl.create 8;
      next_rendez = 0;
      sends = 0;
      receives = 0;
    }
  in
  (* Each envelope is handled in its own short-lived process: delivery
     resumes application continuations (Ivar fills run waiters inline), and
     the application may immediately block again — that must never stall
     the transport's reader/progress process.  Same-instant spawns run
     FIFO, so per-pair ordering is preserved. *)
  transport.t_start ~deliver:(fun envl ->
      Process.spawn hostenv.Proto.Hostenv.sim (fun () -> deliver t envl));
  t

let send t ~dst ~tag n =
  if n < 0 then invalid_arg "Mpi.send: negative size";
  t.sends <- t.sends + 1;
  Cpu.work (cpu t) t.p.per_call;
  if n <= t.p.eager_threshold then
    t.transport.t_xmit ~dst
      { e_src = t.rank; e_tag = tag; e_bytes = n; e_kind = Eager }
  else begin
    let id = (t.rank * 1_000_000) + t.next_rendez in
    t.next_rendez <- t.next_rendez + 1;
    let cts = Ivar.create () in
    Hashtbl.replace t.pending_cts id cts;
    t.transport.t_xmit ~dst
      { e_src = t.rank; e_tag = tag; e_bytes = n; e_kind = Rts id };
    Ivar.read cts;
    t.transport.t_xmit ~dst
      { e_src = t.rank; e_tag = tag; e_bytes = n; e_kind = Rendez_data id }
  end

let find_unexpected t ~src ~tag =
  let want = { want_src = src; want_tag = tag; result = Ivar.create () } in
  let found = ref None in
  let keep = Queue.create () in
  Queue.iter
    (fun env ->
      if !found = None && matches want env then found := Some env
      else Queue.add env keep)
    t.unexpected;
  Queue.clear t.unexpected;
  Queue.transfer keep t.unexpected;
  !found

let recv t ?src ?tag () =
  t.receives <- t.receives + 1;
  Cpu.work (cpu t) t.p.per_call;
  let finish (env : envelope) =
    match env.e_kind with
    | Eager | Rendez_data _ ->
        (* An eager message that arrived before the receive was posted sat
           in a bounce buffer; pay the extra copy MPI implementations pay. *)
        if t.p.unexpected_copy && env.e_bytes > 0 then
          Cpu.copy (cpu t) ~membus:t.env.Proto.Hostenv.membus env.e_bytes;
        env
    | Rts _ | Cts _ -> assert false
  in
  match find_unexpected t ~src ~tag with
  | Some ({ e_kind = Eager; _ } as env) -> finish env
  | Some ({ e_kind = Rts id; _ } as env) ->
      let iv = Ivar.create () in
      Hashtbl.replace t.pending_data id iv;
      send_cts t ~dst:env.e_src id;
      Ivar.read iv
  | Some env -> finish env
  | None ->
      let result = Ivar.create () in
      t.posted <- t.posted @ [ { want_src = src; want_tag = tag; result } ];
      Ivar.read result

(* ------------------------------------------------------------------ *)
(* Non-blocking operations: the blocking call runs in its own process and
   completion is signalled through an ivar. *)

type request = {
  req_done : envelope option Ivar.t;
}

let isend t ~dst ~tag n =
  let req_done = Ivar.create () in
  Process.fork (fun () ->
      send t ~dst ~tag n;
      Ivar.fill req_done None);
  { req_done }

let irecv t ?src ?tag () =
  let req_done = Ivar.create () in
  Process.fork (fun () ->
      let env = recv t ?src ?tag () in
      Ivar.fill req_done (Some env));
  { req_done }

let wait req = Ivar.read req.req_done
let test req = Ivar.is_filled req.req_done

let iprobe t ?src ?tag () =
  let want = { want_src = src; want_tag = tag; result = Ivar.create () } in
  Queue.fold (fun acc env -> acc || matches want env) false t.unexpected

let unexpected_queued t = Queue.length t.unexpected
let sends t = t.sends
let receives t = t.receives
