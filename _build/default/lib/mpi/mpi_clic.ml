let mpi_port = 90

(* CLIC messages model payload as byte counts, so envelope metadata travels
   out-of-band through this registry: the sender enqueues the envelope when
   it hands the message to CLIC, the receiver dequeues it when the matching
   CLIC message (same pair, same order — CLIC channels are ordered) is
   delivered.  The 32 envelope bytes are included in the CLIC message, so
   the metadata's cost is still paid on the wire. *)
type registry = (int * int, Mpi.envelope Queue.t) Hashtbl.t

let registry () : registry = Hashtbl.create 16

let queue_of reg ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt reg key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add reg key q;
      q

let payload_bytes (env : Mpi.envelope) =
  Mpi.envelope_bytes
  + match env.Mpi.e_kind with
    | Mpi.Eager | Mpi.Rendez_data _ -> env.Mpi.e_bytes
    | Mpi.Rts _ | Mpi.Cts _ -> 0

let transport reg clic ~rank =
  let sim =
    (Clic.Clic_module.env_of (Clic.Api.kernel clic)).Proto.Hostenv.sim
  in
  {
    Mpi.t_xmit =
      (fun ~dst env ->
        Queue.add env (queue_of reg ~src:rank ~dst);
        Clic.Api.send clic ~dst ~port:mpi_port (payload_bytes env));
    t_start =
      (fun ~deliver ->
        Engine.Process.spawn sim (fun () ->
            let rec loop () =
              let msg = Clic.Api.recv clic ~port:mpi_port in
              let q =
                queue_of reg ~src:msg.Clic.Clic_module.msg_src ~dst:rank
              in
              (match Queue.take_opt q with
              | Some env -> deliver env
              | None -> ());
              loop ()
            in
            loop ()));
  }
