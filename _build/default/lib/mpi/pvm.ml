open Engine
open Os_model

type params = {
  fragment_bytes : int;
  daemon_window : int;
  task_to_daemon : Time.span;
  per_fragment : Time.span;
  retransmit_timeout : Time.span;
}

let default_params =
  {
    fragment_bytes = 4080;
    daemon_window = 3;
    task_to_daemon = Time.us 15.;
    per_fragment = Time.us 12.;
    retransmit_timeout = Time.ms 100.;
  }

let pvmd_port = 5555

type Proto.Packet.app +=
  | Pvm_frag of {
      pv_src : int;
      pv_msg : int;
      pv_tag : int;
      pv_index : int;
      pv_count : int;
      pv_total : int;
    }
  | Pvm_ack of { pva_src : int; pva_msg : int; pva_index : int }

type outgoing = { o_dst : int; o_tag : int; o_bytes : int }

type reasm = { mutable got : int; r_tag : int; r_total : int; r_count : int }

type t = {
  env : Proto.Hostenv.t;
  udp : Proto.Udp.t;
  p : params;
  outbox : outgoing Mailbox.t;
  inbox : (int * int * int) Queue.t;  (* src, tag, bytes *)
  mutable inbox_waiter : Sched.slot option;
  acks : (int * int, unit Ivar.t) Hashtbl.t;  (* (msg, index) -> ack *)
  reassembly : (int * int, reasm) Hashtbl.t;  (* (src, msg) *)
  mutable next_msg : int;
  mutable routed : int;
}

let cpu t = t.env.Proto.Hostenv.cpu
let node t = t.env.Proto.Hostenv.node

(* The daemon's transmit side: fragment each queued message and send the
   fragments over UDP with a bounded window, waiting for daemon-level
   acks (retransmitting on timeout, though the simulated switch only
   drops under fault injection). *)
let daemon_tx t () =
  let rec loop () =
    let msg = Mailbox.recv t.outbox in
    let id = t.next_msg in
    t.next_msg <- t.next_msg + 1;
    let count = max 1 ((msg.o_bytes + t.p.fragment_bytes - 1) / t.p.fragment_bytes) in
    let window = Semaphore.create t.p.daemon_window in
    let all_acked = Semaphore.create 0 in
    for index = 0 to count - 1 do
      Semaphore.acquire window;
      let bytes =
        if index = count - 1 then msg.o_bytes - (index * t.p.fragment_bytes)
        else t.p.fragment_bytes
      in
      Cpu.work (cpu t) t.p.per_fragment;
      let ack = Ivar.create () in
      Hashtbl.replace t.acks (id, index) ack;
      let app =
        Pvm_frag
          { pv_src = node t; pv_msg = id; pv_tag = msg.o_tag; pv_index = index;
            pv_count = count; pv_total = msg.o_bytes }
      in
      (* bounded retransmission: a daemon that never acknowledges is
         eventually declared unreachable, keeping the simulation live *)
      let attempts = ref 0 in
      let rec send_once () =
        incr attempts;
        Proto.Udp.sendto t.udp ~dst:msg.o_dst ~dst_port:pvmd_port
          ~src_port:pvmd_port ~bytes:(bytes + 24) ~app ();
        let timer =
          Ktimer.after t.env.Proto.Hostenv.sim t.p.retransmit_timeout
            (fun () ->
              if (not (Ivar.is_filled ack)) && !attempts < 20 then
                Process.spawn t.env.Proto.Hostenv.sim send_once)
        in
        ignore timer
      in
      send_once ();
      Process.fork (fun () ->
          Ivar.read ack;
          Hashtbl.remove t.acks (id, index);
          Semaphore.release window;
          Semaphore.release all_acked)
    done;
    Semaphore.acquire ~n:count all_acked;
    t.routed <- t.routed + 1;
    loop ()
  in
  loop ()

let wake_inbox t =
  match t.inbox_waiter with
  | Some slot ->
      t.inbox_waiter <- None;
      Sched.wake slot
  | None -> ()

(* Daemon receive side: runs in the UDP handler (interrupt context). *)
let on_datagram t (d : Proto.Packet.udp_datagram) ~src =
  match d.Proto.Packet.udp_app with
  | Pvm_frag f ->
      Cpu.work ~priority:`High (cpu t) t.p.per_fragment;
      (* daemon-level ack back to the sending daemon *)
      Process.spawn t.env.Proto.Hostenv.sim (fun () ->
          Proto.Udp.sendto t.udp ~dst:src ~dst_port:pvmd_port
            ~src_port:pvmd_port ~bytes:16
            ~app:(Pvm_ack
                    { pva_src = node t; pva_msg = f.pv_msg;
                      pva_index = f.pv_index })
            ());
      let key = (f.pv_src, f.pv_msg) in
      let slot =
        match Hashtbl.find_opt t.reassembly key with
        | Some r -> r
        | None ->
            let r =
              { got = 0; r_tag = f.pv_tag; r_total = f.pv_total;
                r_count = f.pv_count }
            in
            Hashtbl.add t.reassembly key r;
            r
      in
      slot.got <- slot.got + 1;
      if slot.got = slot.r_count then begin
        Hashtbl.remove t.reassembly key;
        (* daemon → task handoff: copy plus wakeup *)
        Cpu.work ~priority:`High (cpu t) t.p.task_to_daemon;
        (* pvmd's buffers are cold: the handoff copy runs at staging rate *)
        Cpu.copy ~priority:`High ~bytes_per_s:150e6 (cpu t)
          ~membus:t.env.Proto.Hostenv.membus slot.r_total;
        t.routed <- t.routed + 1;
        Queue.add (f.pv_src, slot.r_tag, slot.r_total) t.inbox;
        wake_inbox t
      end
  | Pvm_ack a -> (
      match Hashtbl.find_opt t.acks (a.pva_msg, a.pva_index) with
      | Some iv -> if not (Ivar.is_filled iv) then Ivar.fill iv ()
      | None -> ())
  | _ -> ()

let create env udp ?(params = default_params) () =
  let t =
    {
      env;
      udp;
      p = params;
      outbox = Mailbox.create ();
      inbox = Queue.create ();
      inbox_waiter = None;
      acks = Hashtbl.create 32;
      reassembly = Hashtbl.create 8;
      next_msg = 0;
      routed = 0;
    }
  in
  Proto.Udp.bind udp ~port:pvmd_port (on_datagram t);
  Process.spawn env.Proto.Hostenv.sim (daemon_tx t);
  t

let send t ~dst ~tag n =
  if n < 0 then invalid_arg "Pvm.send: negative size";
  (* task → daemon: syscall-ish handoff plus a copy into daemon memory *)
  Cpu.work (cpu t) t.p.task_to_daemon;
  Cpu.copy ~bytes_per_s:150e6 (cpu t) ~membus:t.env.Proto.Hostenv.membus n;
  Mailbox.send t.outbox { o_dst = dst; o_tag = tag; o_bytes = n }

let rec recv t ?tag () =
  let match_tag (_, g, _) =
    match tag with None -> true | Some want -> want = g
  in
  let found = ref None in
  let keep = Queue.create () in
  Queue.iter
    (fun m -> if !found = None && match_tag m then found := Some m
      else Queue.add m keep)
    t.inbox;
  Queue.clear t.inbox;
  Queue.transfer keep t.inbox;
  match !found with
  | Some m -> m
  | None ->
      let slot = Sched.slot t.env.Proto.Hostenv.sched in
      t.inbox_waiter <- Some slot;
      Sched.wait slot;
      recv t ?tag ()

let messages_routed t = t.routed
