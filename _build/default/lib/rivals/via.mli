(** A VIA-style user-level interface (Virtual Interface Architecture),
    the other design point the paper's Section 3.2 contrasts CLIC with.

    VIA removes the operating system from the data path entirely:

    - a process opens a {e virtual interface} (VI) to each peer, with a
      send queue and a receive queue of descriptors in user memory;
    - sending posts a descriptor and rings a doorbell — a single
      programmed-I/O write across the PCI bus; no system call, no kernel;
    - receiving {e polls} the completion queue in user memory: no
      interrupts, so the processor burns cycles whenever it waits;
    - the interface is {e unreliable}: like UDP, the application (or a
      library above) must add reliability — this model delivers what the
      lossless simulated switch delivers and nothing more.

    The experiment [sec3] reproduces the trade-off the paper describes:
    VIA's latency undercuts CLIC's (no syscall, no interrupt path), but a
    waiting receiver occupies its whole CPU, where CLIC's blocked
    receiver costs nothing. *)

open Engine
open Proto

type t

type completion = { vi_src : int; vi_bytes : int }

val driver_params : Os_model.Driver.params
(** The "driver" is only a completion-queue writer: the NIC DMAs data and
    completion entries into user memory; no ISR work is charged beyond
    the entry write. *)

val create : Hostenv.t -> Ethernet.t -> ?poll_interval:Time.span -> unit -> t
(** [poll_interval] is the receive-poll period (default 0.1 us: a tight
    user-space spin on the completion queue; each probe costs 0.4 us of
    CPU, so a waiting receiver runs at ~80% utilization). *)

val send : t -> dst:int -> int -> unit
(** Post send descriptors (one per MTU of data) and ring the doorbell for
    each.  Returns when the descriptors are queued. *)

val recv : t -> completion
(** Poll the completion queue until an entry appears (one entry per
    arriving descriptor/MTU), burning CPU at every poll — the cost
    Section 3.2 attributes to VIA's design. *)

val completions_delivered : t -> int
val polls : t -> int
(** Number of poll probes executed (each occupies the CPU briefly). *)
