lib/rivals/gamma.mli: Engine Ethernet Hostenv Os_model Proto Time
