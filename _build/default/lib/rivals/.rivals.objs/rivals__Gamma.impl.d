lib/rivals/gamma.ml: Clic Cpu Driver Engine Eth_frame Ethernet Hashtbl Hostenv Hw Mac Mailbox Nic Os_model Printf Proto Skbuff Time
