lib/rivals/via.ml: Bus Cpu Driver Engine Eth_frame Ethernet Hostenv Hw Mac Nic Os_model Process Proto Queue Resource Time
