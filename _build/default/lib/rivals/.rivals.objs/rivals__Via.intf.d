lib/rivals/via.mli: Engine Ethernet Hostenv Os_model Proto Time
