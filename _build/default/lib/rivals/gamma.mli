(** A GAMMA-like active-port protocol (Chiola & Ciaccio), the rival the
    paper's Section 5 compares CLIC against.

    GAMMA takes the opposite trade to CLIC on two axes (paper §3.2):

    - it {e replaces} the NIC driver with its own, so receive processing
      runs directly in a trimmed ISR — no bottom half, no generic sk_buff
      handling (run it on a cluster configured with {!driver_params});
    - it enters the kernel through {e lightweight system calls} that skip
      the return-path scheduler invocation.

    Messages land on {e active ports}: a registered handler runs at
    interrupt level as the data is written straight into the receiving
    process's memory — which is what makes GAMMA fast, and also what ties
    it to one process per port and to its own drivers (the portability
    cost CLIC refuses to pay).  Reliability is a go-back-N flow-control
    layer, as in the MPICH-over-GAMMA port; it reuses CLIC's channel
    machinery with GAMMA-tight parameters.

    The paper quotes GAMMA at 32 µs latency and ~800 Mbit/s on the 64-bit
    GA620 NIC; the sec3 experiment configures the cluster accordingly
    (64-bit PCI). *)

open Engine
open Proto

type t

type message = { gm_src : int; gm_port : int; gm_bytes : int }

val driver_params : Os_model.Driver.params
(** The replaced driver: direct-from-ISR dispatch, minimal per-packet
    costs, no per-byte sk_buff staging. *)

val create : Hostenv.t -> Ethernet.t -> t
(** Registers the GAMMA ethertype on the attachment. *)

val bind_port : t -> port:int -> (message -> unit) -> unit
(** Active-port handler; runs at interrupt level after the data has been
    written to the process's memory.  One handler per port.
    @raise Invalid_argument on a duplicate port. *)

val send : t -> dst:int -> port:int -> int -> unit
(** Lightweight-syscall send; blocks only on the flow-control window. *)

val recv : t -> port:int -> message
(** Convenience blocking receive built on an active handler: binds the
    port on first use and parks the caller until a message lands. *)

val lightweight_syscall : Time.span
(** 0.2 µs: kernel entry without the return-path scheduler pass. *)

val messages_delivered : t -> int
