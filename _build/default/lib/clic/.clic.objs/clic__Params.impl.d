lib/clic/params.ml: Engine Time
