lib/clic/channel.mli: Engine Params Sim Wire
