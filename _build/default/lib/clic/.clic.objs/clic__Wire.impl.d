lib/clic/wire.ml: Format Hw Printf
