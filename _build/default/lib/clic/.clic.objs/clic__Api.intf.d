lib/clic/api.mli: Clic_module
