lib/clic/clic_module.ml: Array Bus Channel Cpu Driver Engine Eth_frame Ethernet Hashtbl Hostenv Hw Kmem List Mac Nic Os_model Params Process Proto Queue Resource Sched Sim Skbuff Time Trace Wire
