lib/clic/wire.mli: Format Hw
