lib/clic/api.ml: Clic_module Engine Hostenv Ivar Os_model Proto
