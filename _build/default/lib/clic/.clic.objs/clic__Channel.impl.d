lib/clic/channel.ml: Engine Hashtbl Ktimer List Logs Os_model Params Process Semaphore Sim Wire
