lib/clic/clic_module.mli: Channel Engine Ethernet Hostenv Params Proto Time Trace
