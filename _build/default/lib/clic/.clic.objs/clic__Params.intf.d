lib/clic/params.mli: Engine Time
