(** The CLIC user interface: what an application links against.

    Every operation is a system call (INT 80h in the paper's Figure 3):
    the 0.65 us kernel entry/exit cost is charged here, then the operation
    runs inside {!Clic_module}.  All calls must run inside simulation
    processes.

    The primitives mirror the paper's Section 5 list: synchronous and
    asynchronous sends, send with confirmation of reception, blocking and
    non-blocking receives, remote (asynchronous) writes, broadcast on the
    Ethernet data-link multicast, same-node communication and channel
    bonding (the latter two fall out of {!Clic_module}'s construction). *)

type t

val create : Clic_module.t -> t
val kernel : t -> Clic_module.t
val node : t -> int

val send : t -> dst:int -> port:int -> int -> unit
(** Asynchronous reliable send of [n] bytes: returns when the message is
    handed over (posted or staged), not when it is received. *)

val send_sync : t -> dst:int -> port:int -> int -> unit
(** Send with confirmation of reception: blocks until the receiver's
    CLIC_MODULE has delivered the whole message and confirmed it. *)

val recv : t -> port:int -> Clic_module.message
(** Blocking receive. *)

val try_recv : t -> port:int -> Clic_module.message option
(** Non-blocking receive: "CLIC_MODULE does nothing and returns" when no
    message is waiting (still a system call). *)

val remote_write : t -> dst:int -> region:int -> int -> unit
(** Asynchronous remote write: the data lands in the destination process's
    registered region with no receive call on the far side. *)

val broadcast : t -> port:int -> int -> unit
(** Unreliable broadcast to every node on the segment. *)

val register_region :
  t -> region:int -> (bytes:int -> src:int -> unit) -> unit

val region_bytes : t -> region:int -> int
