open Engine
open Os_model

let log_src = Logs.Src.create "clic.channel" ~doc:"CLIC reliability channel"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  sim : Sim.t;
  self : int;
  peer : int;
  params : Params.t;
  transmit : Wire.packet -> retransmission:bool -> unit;
  deliver : Wire.packet -> unit;
  send_ack : cum_seq:int -> unit;
  (* transmit side *)
  window : Semaphore.t;
  mutable snd_nxt : int;
  mutable snd_una : int;
  unacked : (int, Wire.packet) Hashtbl.t;
  mutable rto_timer : Ktimer.t option;
  mutable retransmissions : int;
  mutable retries : int;  (* consecutive timeouts without progress *)
  mutable dead : bool;
  (* receive side *)
  mutable rcv_nxt : int;
  mutable ooo : (int * Wire.packet) list;
  mutable unacked_rx : int;  (* delivered packets not yet acknowledged *)
  mutable ack_timer : Ktimer.t option;
  mutable duplicates : int;
  mutable delivered : int;
}

let create sim ~self ~peer ~params ~transmit ~deliver ~send_ack () =
  {
    sim;
    self;
    peer;
    params;
    transmit;
    deliver;
    send_ack;
    window = Semaphore.create params.Params.tx_window;
    snd_nxt = 0;
    snd_una = 0;
    unacked = Hashtbl.create 64;
    rto_timer = None;
    retransmissions = 0;
    retries = 0;
    dead = false;
    rcv_nxt = 0;
    ooo = [];
    unacked_rx = 0;
    ack_timer = None;
    duplicates = 0;
    delivered = 0;
  }

let max_retries = 30

let cancel_timer slot =
  match slot with Some timer -> Ktimer.cancel timer | None -> ()

(* ---------------- transmit side ---------------- *)

let rec arm_rto t =
  cancel_timer t.rto_timer;
  t.rto_timer <-
    Some
      (Ktimer.after t.sim t.params.Params.retransmit_timeout (fun () ->
           t.rto_timer <- None;
           on_rto t))

(* Go-back-N: resend everything outstanding, oldest first.  A peer that
   never acknowledges is eventually declared dead (the retry cap keeps the
   simulation live and mirrors real give-up behaviour). *)
and on_rto t =
  if t.snd_una < t.snd_nxt && t.retries >= max_retries then begin
    Log.err (fun m ->
        m "peer %d unreachable: giving up after %d retries (%d unacked)"
          t.peer max_retries (t.snd_nxt - t.snd_una));
    t.dead <- true
  end
  else if t.snd_una < t.snd_nxt then begin
    t.retries <- t.retries + 1;
    Log.debug (fun m ->
        m "rto to peer %d: go-back-N from seq %d (%d outstanding, retry %d)"
          t.peer t.snd_una (t.snd_nxt - t.snd_una) t.retries);
    let seqs = ref [] in
    for seq = t.snd_nxt - 1 downto t.snd_una do
      match Hashtbl.find_opt t.unacked seq with
      | Some pkt -> seqs := pkt :: !seqs
      | None -> ()
    done;
    t.retransmissions <- t.retransmissions + List.length !seqs;
    arm_rto t;
    Process.spawn t.sim (fun () ->
        List.iter (fun pkt -> t.transmit pkt ~retransmission:true) !seqs)
  end

let next_seq t ~data_bytes kind =
  if not (Wire.is_reliable kind) then
    invalid_arg "Channel.next_seq: unreliable kind";
  Semaphore.acquire t.window;
  let seq = t.snd_nxt in
  t.snd_nxt <- t.snd_nxt + 1;
  let pkt = { Wire.src = t.self; chan_seq = Some seq; data_bytes; kind } in
  Hashtbl.replace t.unacked seq pkt;
  if t.rto_timer = None then arm_rto t;
  pkt

let rx_ack t cum_seq =
  if cum_seq > t.snd_una then begin
    t.retries <- 0;
    let freed = min cum_seq t.snd_nxt - t.snd_una in
    for seq = t.snd_una to t.snd_una + freed - 1 do
      Hashtbl.remove t.unacked seq
    done;
    t.snd_una <- t.snd_una + freed;
    Semaphore.release ~n:freed t.window;
    if t.snd_una = t.snd_nxt then begin
      cancel_timer t.rto_timer;
      t.rto_timer <- None
    end
    else arm_rto t
  end

(* ---------------- receive side ---------------- *)

let schedule_ack_now t =
  t.unacked_rx <- 0;
  cancel_timer t.ack_timer;
  t.ack_timer <- None;
  let cum = t.rcv_nxt in
  Process.spawn t.sim (fun () -> t.send_ack ~cum_seq:cum)

let note_delivery t =
  t.unacked_rx <- t.unacked_rx + 1;
  if t.unacked_rx >= t.params.Params.ack_every then schedule_ack_now t
  else if t.ack_timer = None then
    t.ack_timer <-
      Some
        (Ktimer.after t.sim t.params.Params.ack_timeout (fun () ->
             t.ack_timer <- None;
             if t.unacked_rx > 0 then schedule_ack_now t))

let rec drain_ooo t =
  match t.ooo with
  | (s, pkt) :: rest when s = t.rcv_nxt ->
      t.ooo <- rest;
      t.rcv_nxt <- t.rcv_nxt + 1;
      t.delivered <- t.delivered + 1;
      t.deliver pkt;
      note_delivery t;
      drain_ooo t
  | (s, _) :: rest when s < t.rcv_nxt ->
      t.ooo <- rest;
      drain_ooo t
  | _ -> ()

let rx t pkt =
  match pkt.Wire.chan_seq with
  | None -> invalid_arg "Channel.rx: unsequenced packet"
  | Some seq ->
      if seq = t.rcv_nxt then begin
        t.rcv_nxt <- t.rcv_nxt + 1;
        t.delivered <- t.delivered + 1;
        t.deliver pkt;
        note_delivery t;
        drain_ooo t
      end
      else if seq > t.rcv_nxt then begin
        if not (List.mem_assoc seq t.ooo) then begin
          let rec ins = function
            | [] -> [ (seq, pkt) ]
            | (s, _) :: _ as rest when seq < s -> (seq, pkt) :: rest
            | hd :: rest -> hd :: ins rest
          in
          t.ooo <- ins t.ooo
        end
        else t.duplicates <- t.duplicates + 1;
        (* Announce the hole so the sender can recover promptly. *)
        schedule_ack_now t
      end
      else begin
        t.duplicates <- t.duplicates + 1;
        schedule_ack_now t
      end

let is_dead t = t.dead
let peer t = t.peer
let outstanding t = t.snd_nxt - t.snd_una
let retransmissions t = t.retransmissions
let duplicates_dropped t = t.duplicates
let delivered t = t.delivered
