(** Per-peer reliable delivery: the transport half of CLIC.

    Each pair of nodes shares a bidirectional channel carrying sequenced
    packets with cumulative acknowledgements, a bounded transmit window,
    go-back-N retransmission on timeout, and in-order delivery with an
    out-of-order hold queue (packets may reorder under channel bonding).

    The channel does not touch hardware itself: the owner (CLIC_MODULE)
    supplies [transmit] (hand a packet to a NIC), [deliver] (in-order
    upcall) and [send_ack] closures.  [transmit] for retransmissions is
    invoked from a fresh process; [deliver] runs in the receive (interrupt)
    context. *)

open Engine

type t

val create :
  Sim.t ->
  self:int ->
  peer:int ->
  params:Params.t ->
  transmit:(Wire.packet -> retransmission:bool -> unit) ->
  deliver:(Wire.packet -> unit) ->
  send_ack:(cum_seq:int -> unit) ->
  unit ->
  t

val next_seq : t -> data_bytes:int -> Wire.kind -> Wire.packet
(** Blocks while the transmit window is full; assigns the next sequence
    number, records the packet for retransmission and arms the timer.
    Must run in a process.  @raise Invalid_argument on unreliable kinds. *)

val rx : t -> Wire.packet -> unit
(** Handles an incoming sequenced packet: delivers in order, holds
    out-of-order arrivals, acknowledges per the ack policy.  Duplicate
    packets are dropped (re-acknowledged). *)

val rx_ack : t -> int -> unit
(** Cumulative ack from the peer: frees window slots and retransmit
    state. *)

val is_dead : t -> bool
(** True once the retry cap (30 consecutive timeouts without progress) has
    been hit: the channel stops retransmitting and declares the peer
    unreachable. *)

(** {1 Statistics} *)

val peer : t -> int
val outstanding : t -> int
val retransmissions : t -> int
val duplicates_dropped : t -> int
val delivered : t -> int
