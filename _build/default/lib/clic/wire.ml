type frag = {
  msg_id : int;
  frag_index : int;
  frag_count : int;
  msg_bytes : int;
}

type kind =
  | Data of { port : int; sync : bool; frag : frag }
  | Remote_write of { region : int; frag : frag }
  | Bcast of { port : int; frag : frag }
  | Chan_ack of { cum_seq : int }
  | Msg_ack of { msg_id : int }

type packet = {
  src : int;
  chan_seq : int option;
  data_bytes : int;
  kind : kind;
}

let ethertype = 0x8874

type Hw.Eth_frame.payload += Clic of packet

let is_reliable = function
  | Data _ | Remote_write _ | Msg_ack _ -> true
  | Bcast _ | Chan_ack _ -> false

let wire_bytes ~header_bytes pkt = header_bytes + pkt.data_bytes

let pp fmt pkt =
  let kind_str =
    match pkt.kind with
    | Data { port; sync; frag } ->
        Printf.sprintf "data(port=%d sync=%b msg=%d %d/%d)" port sync
          frag.msg_id (frag.frag_index + 1) frag.frag_count
    | Remote_write { region; frag } ->
        Printf.sprintf "rwrite(region=%d msg=%d)" region frag.msg_id
    | Bcast { port; frag } ->
        Printf.sprintf "bcast(port=%d msg=%d)" port frag.msg_id
    | Chan_ack { cum_seq } -> Printf.sprintf "ack(%d)" cum_seq
    | Msg_ack { msg_id } -> Printf.sprintf "msg-ack(%d)" msg_id
  in
  Format.fprintf fmt "clic[src=%d seq=%s %dB %s]" pkt.src
    (match pkt.chan_seq with None -> "-" | Some s -> string_of_int s)
    pkt.data_bytes kind_str
