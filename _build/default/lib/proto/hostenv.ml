open Engine
open Os_model

type t = {
  sim : Sim.t;
  node : int;
  cpu : Cpu.t;
  membus : Bus.t;
  sched : Sched.t;
  syscall : Syscall.t;
  driver : Driver.t;
  kmem : Kmem.t;
}

let mac t = Hw.Mac.of_node t.node

let make ~sim ~node ~cpu ~membus ~sched ~syscall ~driver ~kmem =
  { sim; node; cpu; membus; sched; syscall; driver; kmem }
