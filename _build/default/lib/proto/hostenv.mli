(** The bundle of OS services a protocol stack runs against on one host.

    Built once per node (see [Cluster.Node]); every protocol layer hangs off
    this instead of threading six arguments around. *)

open Engine
open Os_model

type t = {
  sim : Sim.t;
  node : int;  (** cluster node id; the NIC's MAC is [Mac.of_node node] *)
  cpu : Cpu.t;
  membus : Bus.t;
  sched : Sched.t;
  syscall : Syscall.t;
  driver : Driver.t;
  kmem : Kmem.t;
}

val mac : t -> Hw.Mac.t
val make :
  sim:Sim.t ->
  node:int ->
  cpu:Cpu.t ->
  membus:Bus.t ->
  sched:Sched.t ->
  syscall:Syscall.t ->
  driver:Driver.t ->
  kmem:Kmem.t ->
  t
