(** The host's L2 attachment point: ethertype demultiplexing on receive and
    a bounded device queue (Linux's qdisc / txqueuelen) on transmit.

    Protocol stacks register per-ethertype receive handlers (which run in
    the driver's upcall context, i.e. interrupt level) and transmit through
    {!send}, which blocks the caller only when the device queue is full.
    A pump process feeds the queue to the driver, waiting for transmit-ring
    space when the NIC is backed up. *)

open Os_model
open Hw

type t

val create : Hostenv.t -> ?txqueuelen:int -> unit -> t
(** Installs itself as the driver's receive upcall.  [txqueuelen] is the
    device queue bound in packets (default 100). *)

val register : t -> ethertype:int -> (Nic.rx_desc -> unit) -> unit
(** @raise Invalid_argument on a duplicate ethertype. *)

val send :
  t ->
  dst:Mac.t ->
  ethertype:int ->
  skb:Skbuff.t ->
  payload:Eth_frame.payload ->
  ?on_complete:(unit -> unit) ->
  unit ->
  unit
(** Enqueues one frame; blocks while the device queue is full.
    [on_complete] fires when the frame has left the NIC. *)

val env : t -> Hostenv.t
val queued : t -> int
val unhandled : t -> int
(** Frames received with no handler for their ethertype. *)
