(** The IP layer of the baseline stack.

    CLIC's whole argument is that this layer (and TCP above it) is overhead
    a cluster does not need; we implement it faithfully enough to charge
    that overhead: header building, routing lookup, fragmentation to the
    MTU and reassembly, and per-packet processing costs on both sides.
    All cluster nodes are on one subnet, so routing degenerates to a direct
    ARP-style node→MAC mapping (charged, not modelled in detail). *)

open Engine
open Os_model

type params = {
  tx_cost : Time.span;  (** per packet sent (header build, route lookup) *)
  rx_cost : Time.span;  (** per packet received (validation, demux) *)
}

val default_params : params
(** 1.5 us / 2 us, consistent with 2.4-kernel measurements. *)

type t

val create : Ethernet.t -> ?params:params -> unit -> t
(** Registers ethertype 0x0800 with the Ethernet layer. *)

val register_tcp : t -> (Packet.tcp_segment -> src:int -> unit) -> unit
(** Handler runs at interrupt priority (softirq context). *)

val register_udp : t -> (Packet.udp_datagram -> src:int -> unit) -> unit

val send : t -> dst:int -> skb:Skbuff.t -> Packet.ip_proto -> unit
(** Fragments to the MTU when the L4 payload exceeds it.  The [skb] carries
    the data's location for the L2 transmit (its data size must match the
    L4 payload).  Blocking (device queue). *)

val mtu : t -> int
val packets_sent : t -> int
(** Wire packets, counting fragments. *)

val packets_received : t -> int
val reassembly_pending : t -> int
val ethernet : t -> Ethernet.t
