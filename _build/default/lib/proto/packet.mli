(** Wire formats of the TCP/IP suite, as carried in Ethernet frames.

    Only metadata travels: sizes, sequence numbers, ports.  Payload bytes
    are modelled by their counts (the simulation charges the costs of
    moving and checksumming them); application layers that need to identify
    a message attach an {!app} value, an extensible variant each layer
    extends with its own constructor. *)

type app = ..
(** Application payload descriptors; [No_app] when none. *)

type app += No_app

(** {1 TCP} *)

type tcp_flags = { syn : bool; fin : bool; ack : bool }

val data_flags : tcp_flags
(** Plain data-bearing segment (ACK set, as on any established segment). *)

val syn_flags : tcp_flags
val synack_flags : tcp_flags
val ack_flags : tcp_flags

type tcp_segment = {
  src_port : int;
  dst_port : int;
  seq : int;  (** first data byte carried, per direction, starting at 0 *)
  ack_seq : int;  (** next byte expected from the peer *)
  data_bytes : int;
  flags : tcp_flags;
  window : int;  (** advertised receive window, bytes *)
}

val tcp_header_bytes : int
(** 20 *)

(** {1 UDP} *)

type udp_datagram = {
  udp_src_port : int;
  udp_dst_port : int;
  udp_bytes : int;  (** payload size *)
  udp_app : app;
}

val udp_header_bytes : int
(** 8 *)

(** {1 IP} *)

type ip_proto = Tcp of tcp_segment | Udp of udp_datagram

type ip_frag = { ip_id : int; frag_index : int; frag_count : int }

type ip_packet = {
  ip_src : int;  (** node ids stand in for addresses *)
  ip_dst : int;
  ip_payload : ip_proto;
  ip_bytes : int;  (** L4 bytes carried by {e this} packet (fragment) *)
  ip_frag : ip_frag option;
}

val ip_header_bytes : int
(** 20 *)

val ethertype_ip : int
(** 0x0800 *)

type Hw.Eth_frame.payload += Ip of ip_packet

(** {1 Sizing helpers} *)

val tcp_wire_bytes : tcp_segment -> int
(** TCP header + data. *)

val udp_wire_bytes : udp_datagram -> int
val ip_payload_wire_bytes : ip_proto -> int
