type app = ..
type app += No_app

type tcp_flags = { syn : bool; fin : bool; ack : bool }

let data_flags = { syn = false; fin = false; ack = true }
let syn_flags = { syn = true; fin = false; ack = false }
let synack_flags = { syn = true; fin = false; ack = true }
let ack_flags = { syn = false; fin = false; ack = true }

type tcp_segment = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack_seq : int;
  data_bytes : int;
  flags : tcp_flags;
  window : int;
}

let tcp_header_bytes = 20

type udp_datagram = {
  udp_src_port : int;
  udp_dst_port : int;
  udp_bytes : int;
  udp_app : app;
}

let udp_header_bytes = 8

type ip_proto = Tcp of tcp_segment | Udp of udp_datagram
type ip_frag = { ip_id : int; frag_index : int; frag_count : int }

type ip_packet = {
  ip_src : int;
  ip_dst : int;
  ip_payload : ip_proto;
  ip_bytes : int;
  ip_frag : ip_frag option;
}

let ip_header_bytes = 20
let ethertype_ip = 0x0800

type Hw.Eth_frame.payload += Ip of ip_packet

let tcp_wire_bytes seg = tcp_header_bytes + seg.data_bytes
let udp_wire_bytes d = udp_header_bytes + d.udp_bytes

let ip_payload_wire_bytes = function
  | Tcp seg -> tcp_wire_bytes seg
  | Udp d -> udp_wire_bytes d
