lib/proto/tcp.mli: Engine Format Ip Time
