lib/proto/hostenv.ml: Bus Cpu Driver Engine Hw Kmem Os_model Sched Sim Syscall
