lib/proto/udp.mli: Engine Ip Packet Time
