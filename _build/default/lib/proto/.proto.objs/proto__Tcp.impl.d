lib/proto/tcp.ml: Bus Cpu Engine Ethernet Format Hashtbl Hostenv Hw Ip Ivar Ktimer List Logs Mailbox Os_model Packet Printf Process Sched Semaphore Skbuff Syscall Time
