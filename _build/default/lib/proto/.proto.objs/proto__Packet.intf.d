lib/proto/packet.mli: Hw
