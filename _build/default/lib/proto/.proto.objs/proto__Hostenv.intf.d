lib/proto/hostenv.mli: Bus Cpu Driver Engine Hw Kmem Os_model Sched Sim Syscall
