lib/proto/ip.ml: Cpu Driver Engine Eth_frame Ethernet Hashtbl Hostenv Hw Mac Nic Os_model Packet Skbuff Time
