lib/proto/ethernet.ml: Driver Engine Eth_frame Hashtbl Hostenv Hw Mac Mailbox Nic Os_model Printf Process Semaphore Skbuff
