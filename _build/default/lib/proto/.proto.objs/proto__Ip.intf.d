lib/proto/ip.mli: Engine Ethernet Os_model Packet Skbuff Time
