lib/proto/udp.ml: Cpu Engine Ethernet Hashtbl Hostenv Ip Os_model Packet Printf Skbuff Time
