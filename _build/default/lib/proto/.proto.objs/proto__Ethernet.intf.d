lib/proto/ethernet.mli: Eth_frame Hostenv Hw Mac Nic Os_model Skbuff
