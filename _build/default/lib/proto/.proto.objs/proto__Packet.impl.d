lib/proto/packet.ml: Hw
