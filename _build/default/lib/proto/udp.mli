(** UDP: unreliable datagrams over IP.

    Used by the PVM layer (whose daemons route packets over UDP, one of the
    reasons PVM trails every other curve in the paper's Figure 6) and as a
    light L4 for tests.  Datagrams larger than the MTU rely on IP
    fragmentation; lost fragments lose the datagram. *)

open Engine

type params = {
  tx_cost : Time.span;  (** per datagram sent *)
  rx_cost : Time.span;  (** per datagram received *)
  checksum_bytes_per_s : float;  (** CPU checksum rate, both sides *)
}

val default_params : params

type t

val create : Ip.t -> ?params:params -> unit -> t

val bind : t -> port:int -> (Packet.udp_datagram -> src:int -> unit) -> unit
(** Handler runs at interrupt priority, after the receive-side costs have
    been charged.  @raise Invalid_argument on a duplicate port. *)

val sendto :
  t -> dst:int -> dst_port:int -> ?src_port:int -> bytes:int ->
  app:Packet.app -> ?zero_copy:bool -> unit -> unit
(** Blocking send of one datagram.  [zero_copy] defaults to false: the
    datagram is staged into kernel memory (the normal UDP copy). *)

val datagrams_sent : t -> int
val datagrams_received : t -> int
val unbound_drops : t -> int
