open Engine
open Os_model

let log_src = Logs.Src.create "proto.tcp" ~doc:"TCP baseline stack"

module Log = (val Logs.src_log log_src : Logs.LOG)

type params = {
  tx_per_segment : Time.span;
  rx_per_segment : Time.span;
  ack_tx_cost : Time.span;
  ack_rx_cost : Time.span;
  per_send_call : Time.span;
  per_recv_call : Time.span;
  tx_bytes_per_s : float;
  rx_bytes_per_s : float;
  socket_buffer : int;
  initial_cwnd_segments : int;
  initial_ssthresh : int;
  delack_segments : int;
  delack_timeout : Time.span;
  rto : Time.span;
  dupack_threshold : int;
}

let default_params =
  {
    tx_per_segment = Time.us 9.;
    rx_per_segment = Time.us 10.;
    ack_tx_cost = Time.us 2.;
    ack_rx_cost = Time.us 2.;
    per_send_call = Time.us 300.;
    per_recv_call = Time.us 300.;
    tx_bytes_per_s = 90e6;
    rx_bytes_per_s = 50e6;
    socket_buffer = 131072;
    initial_cwnd_segments = 2;
    initial_ssthresh = 131072;
    delack_segments = 2;
    delack_timeout = Time.ms 40.;
    rto = Time.ms 200.;
    dupack_threshold = 3;
  }

type conn = {
  tcp : t;
  local_port : int;
  peer : int;
  peer_port : int;
  (* ---- send side ---- *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable unsent : int;  (* bytes in the send buffer not yet segmented *)
  send_room : Semaphore.t;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable peer_window : int;
  mutable dupacks : int;
  mutable rto_timer : Ktimer.t option;
  (* ---- receive side ---- *)
  mutable rcv_nxt : int;
  mutable ooo : (int * int) list;  (* out-of-order (seq, len), sorted *)
  mutable avail : int;
  mutable delivered : int;
  mutable recv_waiter : Sched.slot option;
  mutable delack_count : int;
  mutable delack_timer : Ktimer.t option;
  mutable established : bool;
  established_iv : unit Ivar.t;
  (* ---- teardown ---- *)
  mutable fin_sent : bool;
  mutable peer_fin : bool;
}

and t = {
  ip : Ip.t;
  p : params;
  conns : (int * int * int, conn) Hashtbl.t;  (* local_port, peer, peer_port *)
  listeners : (int, conn Mailbox.t) Hashtbl.t;
  mutable next_port : int;
  mutable segments_sent : int;
  mutable retransmits : int;
  mutable acks_sent : int;
}

let env t = Ethernet.env (Ip.ethernet t.ip)
let sim t = (env t).Hostenv.sim
let cpu t = (env t).Hostenv.cpu
let sched t = (env t).Hostenv.sched
let mss_of t = Ip.mtu t.ip - Packet.ip_header_bytes - Packet.tcp_header_bytes
let mss c = mss_of c.tcp
let params t = t.p

let byte_time rate n = Time.of_bytes_at_rate ~bytes_per_s:rate n
let in_flight c = c.snd_nxt - c.snd_una
let rcv_window c = max 0 (c.tcp.p.socket_buffer - c.avail)

(* ------------------------------------------------------------------ *)
(* Segment emission *)

let emit c ?(data = 0) ?(seq = 0) flags =
  let t = c.tcp in
  let seg =
    { Packet.src_port = c.local_port; dst_port = c.peer_port; seq;
      ack_seq = c.rcv_nxt; data_bytes = data; flags; window = rcv_window c }
  in
  (* Any segment carries the latest ack: outstanding delayed acks are
     satisfied by piggybacking. *)
  c.delack_count <- 0;
  (match c.delack_timer with
  | Some timer ->
      Ktimer.cancel timer;
      c.delack_timer <- None
  | None -> ());
  let skb =
    Skbuff.create ~header_bytes:Packet.tcp_header_bytes
      [ { Skbuff.region = Skbuff.Kernel_memory; bytes = data } ]
  in
  Ip.send t.ip ~dst:c.peer ~skb (Packet.Tcp seg)

let send_pure_ack c =
  let t = c.tcp in
  t.acks_sent <- t.acks_sent + 1;
  Cpu.work (cpu t) t.p.ack_tx_cost;
  emit c Packet.ack_flags

(* Pure acks are triggered from interrupt context; run them in their own
   process so the receive path never blocks on the device queue. *)
let schedule_ack c = Process.spawn (sim c.tcp) (fun () -> send_pure_ack c)

let rec arm_rto c =
  (match c.rto_timer with Some timer -> Ktimer.cancel timer | None -> ());
  c.rto_timer <-
    Some (Ktimer.after (sim c.tcp) c.tcp.p.rto (fun () -> on_rto c))

and cancel_rto c =
  match c.rto_timer with
  | Some timer ->
      Ktimer.cancel timer;
      c.rto_timer <- None
  | None -> ()

(* Go-back-N recovery: everything in flight returns to the unsent pool. *)
and on_rto c =
  c.rto_timer <- None;
  if in_flight c > 0 then begin
    let t = c.tcp in
    Log.debug (fun m ->
        m "rto on %d<->%d:%d: resending from %d (%dB in flight)"
          c.local_port c.peer c.peer_port c.snd_una (in_flight c));
    t.retransmits <- t.retransmits + 1;
    c.ssthresh <- max (in_flight c / 2) (2 * mss c);
    c.cwnd <- mss c;
    c.unsent <- c.unsent + in_flight c;
    c.snd_nxt <- c.snd_una;
    c.dupacks <- 0;
    Process.spawn (sim t) (fun () -> push_data c)
  end

(* Send as much buffered data as the congestion and peer windows allow.
   Runs in task context or a forked process; several instances may be in
   flight at once (an ack can arrive mid-send), so all sequence-space
   bookkeeping is committed atomically BEFORE any operation that can
   suspend — otherwise two instances would carve segments out of the same
   stale [unsent] count. *)
and push_data c =
  let t = c.tcp in
  let window = min c.cwnd c.peer_window in
  if c.unsent > 0 && in_flight c < window then begin
    let len = min (mss c) (min c.unsent (window - in_flight c)) in
    if len > 0 then begin
      let seq = c.snd_nxt in
      c.snd_nxt <- c.snd_nxt + len;
      c.unsent <- c.unsent - len;
      t.segments_sent <- t.segments_sent + 1;
      if c.rto_timer = None then arm_rto c;
      Cpu.work (cpu t) t.p.tx_per_segment;
      emit c ~data:len ~seq Packet.data_flags;
      push_data c
    end
  end

let fast_retransmit c =
  let t = c.tcp in
  Log.debug (fun m ->
      m "fast retransmit on %d<->%d:%d at seq %d" c.local_port c.peer
        c.peer_port c.snd_una);
  t.retransmits <- t.retransmits + 1;
  c.ssthresh <- max (in_flight c / 2) (2 * mss c);
  c.cwnd <- c.ssthresh;
  c.dupacks <- 0;
  let len = min (mss c) (in_flight c) in
  Process.spawn (sim t) (fun () ->
      Cpu.work (cpu t) t.p.tx_per_segment;
      t.segments_sent <- t.segments_sent + 1;
      emit c ~data:len ~seq:c.snd_una Packet.data_flags)

(* ------------------------------------------------------------------ *)
(* Receive path (interrupt context) *)

let wake_reader c =
  match c.recv_waiter with
  | Some slot ->
      c.recv_waiter <- None;
      Sched.wake slot
  | None -> ()

let insert_ooo c seq len =
  let rec ins = function
    | [] -> [ (seq, len) ]
    | (s, _) :: _ as rest when seq < s -> (seq, len) :: rest
    | hd :: rest -> hd :: ins rest
  in
  if not (List.exists (fun (s, _) -> s = seq) c.ooo) then
    c.ooo <- ins c.ooo

let rec drain_ooo c =
  match c.ooo with
  | (s, l) :: rest when s <= c.rcv_nxt ->
      (* Overlap is benign: count only the new bytes. *)
      let new_bytes = max 0 (s + l - c.rcv_nxt) in
      c.rcv_nxt <- c.rcv_nxt + new_bytes;
      c.avail <- c.avail + new_bytes;
      c.delivered <- c.delivered + new_bytes;
      c.ooo <- rest;
      drain_ooo c
  | _ -> ()

let on_data c (seg : Packet.tcp_segment) =
  let t = c.tcp in
  Cpu.work ~priority:`High (cpu t) t.p.rx_per_segment;
  Cpu.work_sliced ~priority:`High (cpu t)
    (byte_time t.p.rx_bytes_per_s seg.data_bytes);
  if seg.seq <= c.rcv_nxt && seg.seq + seg.data_bytes > c.rcv_nxt then begin
    (* In-order, possibly overlapping a retransmission: deliver the new
       tail only. *)
    let new_bytes = seg.seq + seg.data_bytes - c.rcv_nxt in
    c.rcv_nxt <- c.rcv_nxt + new_bytes;
    c.avail <- c.avail + new_bytes;
    c.delivered <- c.delivered + new_bytes;
    drain_ooo c;
    wake_reader c;
    c.delack_count <- c.delack_count + 1;
    if c.delack_count >= t.p.delack_segments then schedule_ack c
    else if c.delack_timer = None then
      c.delack_timer <-
        Some
          (Ktimer.after (sim t) t.p.delack_timeout (fun () ->
               c.delack_timer <- None;
               if c.delack_count > 0 then schedule_ack c))
  end
  else if seg.seq > c.rcv_nxt then begin
    insert_ooo c seg.seq seg.data_bytes;
    schedule_ack c (* duplicate ack announcing the hole *)
  end
  else schedule_ack c (* stale retransmission: re-announce rcv_nxt *)

let on_ack c (seg : Packet.tcp_segment) =
  let t = c.tcp in
  if seg.data_bytes = 0 then Cpu.work ~priority:`High (cpu t) t.p.ack_rx_cost;
  let window_changed = seg.window <> c.peer_window in
  c.peer_window <- seg.window;
  if seg.ack_seq > c.snd_una then begin
    let acked = seg.ack_seq - c.snd_una in
    c.snd_una <- seg.ack_seq;
    c.dupacks <- 0;
    Semaphore.release ~n:acked c.send_room;
    (* Slow start: one MSS per ack; congestion avoidance: ~MSS per RTT. *)
    if c.cwnd < c.ssthresh then c.cwnd <- c.cwnd + mss c
    else c.cwnd <- c.cwnd + max 1 (mss c * mss c / c.cwnd);
    if in_flight c = 0 then cancel_rto c else arm_rto c;
    if c.unsent > 0 then Process.spawn (sim t) (fun () -> push_data c)
  end
  else if
    seg.data_bytes = 0 && in_flight c > 0 && seg.ack_seq = c.snd_una
    && not window_changed
  then begin
    (* A true duplicate ack (window updates are not dupacks, RFC 5681). *)
    c.dupacks <- c.dupacks + 1;
    if c.dupacks = t.p.dupack_threshold then fast_retransmit c
  end
  else if c.unsent > 0 && in_flight c < min c.cwnd c.peer_window then
    (* A window update re-opened the door. *)
    Process.spawn (sim t) (fun () -> push_data c)

(* ------------------------------------------------------------------ *)
(* Connection management *)

let make_conn t ~local_port ~peer ~peer_port =
  let c =
    {
      tcp = t;
      local_port;
      peer;
      peer_port;
      snd_una = 0;
      snd_nxt = 0;
      unsent = 0;
      send_room = Semaphore.create t.p.socket_buffer;
      cwnd = t.p.initial_cwnd_segments * mss_of t;
      ssthresh = t.p.initial_ssthresh;
      peer_window = t.p.socket_buffer;
      dupacks = 0;
      rto_timer = None;
      rcv_nxt = 0;
      ooo = [];
      avail = 0;
      delivered = 0;
      recv_waiter = None;
      delack_count = 0;
      delack_timer = None;
      established = false;
      established_iv = Ivar.create ();
      fin_sent = false;
      peer_fin = false;
    }
  in
  Hashtbl.replace t.conns (local_port, peer, peer_port) c;
  c

let establish c =
  if not c.established then begin
    c.established <- true;
    Ivar.fill c.established_iv ()
  end

let on_segment t (seg : Packet.tcp_segment) ~src =
  let key = (seg.dst_port, src, seg.src_port) in
  match Hashtbl.find_opt t.conns key with
  | Some c ->
      if seg.flags.Packet.syn && not seg.flags.Packet.ack then
        (* Duplicate SYN: our SYN|ACK was lost; resend it. *)
        Process.spawn (sim t) (fun () ->
            Cpu.work (cpu t) t.p.ack_tx_cost;
            emit c Packet.synack_flags)
      else if seg.flags.Packet.syn && seg.flags.Packet.ack then begin
        (* SYN|ACK at the client: established; ack it. *)
        establish c;
        schedule_ack c
      end
      else begin
        if not c.established then begin
          (* First ACK (or data) completing the server-side handshake. *)
          establish c;
          match Hashtbl.find_opt t.listeners c.local_port with
          | Some queue -> Mailbox.send queue c
          | None -> ()
        end;
        if seg.data_bytes > 0 then on_data c seg;
        if seg.flags.Packet.fin then begin
          c.peer_fin <- true;
          wake_reader c;
          schedule_ack c
        end;
        if seg.flags.Packet.ack then on_ack c seg
      end
  | None ->
      if seg.flags.Packet.syn && not seg.flags.Packet.ack then begin
        match Hashtbl.find_opt t.listeners seg.dst_port with
        | Some _queue ->
            let c =
              make_conn t ~local_port:seg.dst_port ~peer:src
                ~peer_port:seg.src_port
            in
            Process.spawn (sim t) (fun () ->
                Cpu.work (cpu t) t.p.ack_tx_cost;
                emit c Packet.synack_flags)
        | None -> ()
      end

let create ip ?(params = default_params) () =
  let t =
    {
      ip;
      p = params;
      conns = Hashtbl.create 16;
      listeners = Hashtbl.create 4;
      next_port = 32768;
      segments_sent = 0;
      retransmits = 0;
      acks_sent = 0;
    }
  in
  Ip.register_tcp ip (on_segment t);
  t

let listen t ~port =
  if Hashtbl.mem t.listeners port then
    invalid_arg (Printf.sprintf "Tcp.listen: port %d taken" port);
  Hashtbl.add t.listeners port (Mailbox.create ())

let connect t ~dst ~port =
  let local_port = t.next_port in
  t.next_port <- t.next_port + 1;
  let c = make_conn t ~local_port ~peer:dst ~peer_port:port in
  (* The handshake has its own retransmission: a lost SYN or SYN|ACK would
     otherwise hang the connection forever.  Wait for establishment with a
     timeout, re-emitting the SYN on each expiry. *)
  let established_or_timeout () =
    if Ivar.is_filled c.established_iv then true
    else
      Process.await (fun resume ->
          let settled = ref false in
          let finish v =
            if not !settled then begin
              settled := true;
              resume v
            end
          in
          let timer =
            Ktimer.after (sim t) t.p.rto (fun () -> finish false)
          in
          Ivar.on_fill c.established_iv (fun () ->
              Ktimer.cancel timer;
              finish true))
  in
  let attempts = ref 0 in
  let rec try_syn () =
    incr attempts;
    Cpu.work (cpu t) t.p.ack_tx_cost;
    emit c Packet.syn_flags;
    if not (established_or_timeout ()) then
      if !attempts < 8 then try_syn ()
      else failwith "Tcp.connect: handshake timed out"
  in
  try_syn ();
  c

let accept t ~port =
  match Hashtbl.find_opt t.listeners port with
  | Some queue -> Mailbox.recv queue
  | None -> invalid_arg (Printf.sprintf "Tcp.accept: port %d not listening" port)

(* ------------------------------------------------------------------ *)
(* Application interface *)

let send c n =
  if n < 0 then invalid_arg "Tcp.send: negative size";
  let t = c.tcp in
  let e = env t in
  Syscall.wrap e.Hostenv.syscall (fun () ->
      Cpu.work (cpu t) t.p.per_send_call;
      let rec feed remaining =
        if remaining > 0 then begin
          let chunk = min remaining (t.p.socket_buffer / 2) in
          Semaphore.acquire ~n:chunk c.send_room;
          (* copy_from_user + checksum in one pass (preemptible) *)
          Process.fork (fun () ->
              Bus.transfer e.Hostenv.membus (Hw.Membus.copy_bytes chunk));
          Cpu.work_sliced (cpu t) (byte_time t.p.tx_bytes_per_s chunk);
          c.unsent <- c.unsent + chunk;
          push_data c;
          feed (remaining - chunk)
        end
      in
      feed n)

let recv c n =
  if n < 0 then invalid_arg "Tcp.recv: negative size";
  let t = c.tcp in
  let e = env t in
  Syscall.wrap e.Hostenv.syscall (fun () ->
      Cpu.work (cpu t) t.p.per_recv_call;
      let rec take got =
        if got < n then begin
          if c.avail = 0 && c.peer_fin then raise End_of_file;
          if c.avail = 0 then begin
            let slot = Sched.slot (sched t) in
            c.recv_waiter <- Some slot;
            Sched.wait slot
          end;
          if c.avail = 0 && c.peer_fin then raise End_of_file;
          let window_before = rcv_window c in
          let chunk = min c.avail (n - got) in
          c.avail <- c.avail - chunk;
          Cpu.copy (cpu t) ~membus:e.Hostenv.membus chunk;
          (* Re-open the peer's view of our window if it was pinched. *)
          if window_before < mss c && rcv_window c >= mss c then
            schedule_ack c;
          take (got + chunk)
        end
      in
      take 0)

let pp_conn fmt c =
  Format.fprintf fmt
    "conn[%d<->%d:%d una=%d nxt=%d unsent=%d room=%d cwnd=%d pwin=%d dup=%d      rto=%b | rcv=%d avail=%d ooo=%d]"
    c.local_port c.peer c.peer_port c.snd_una c.snd_nxt c.unsent
    (Semaphore.available c.send_room) c.cwnd c.peer_window c.dupacks
    (c.rto_timer <> None) c.rcv_nxt c.avail (List.length c.ooo)

let ip_of t = t.ip
let peer_of c = c.peer
(* Orderly shutdown: drain our own send side, then emit FIN and return
   once the peer acknowledges it (the ack of everything sent).  Draining is
   detected by a coarse poll — teardown is not on any measured path. *)
let close c =
  if not c.fin_sent then begin
    let t = c.tcp in
    c.fin_sent <- true;
    let rec drain () =
      if c.unsent > 0 || in_flight c > 0 then begin
        Process.delay (Time.us 200.);
        drain ()
      end
    in
    drain ();
    Cpu.work (cpu t) t.p.ack_tx_cost;
    emit c { Packet.data_flags with fin = true };
    (* FIN consumes no sequence space in this model; give the ack a round
       trip before returning *)
    Process.delay (Time.us 200.)
  end

let at_eof c = c.peer_fin && c.avail = 0
let fin_received c = c.peer_fin

let available c = c.avail
let segments_sent t = t.segments_sent
let retransmits t = t.retransmits
let acks_sent t = t.acks_sent
let bytes_delivered c = c.delivered
