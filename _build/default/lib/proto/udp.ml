open Engine
open Os_model

type params = {
  tx_cost : Time.span;
  rx_cost : Time.span;
  checksum_bytes_per_s : float;
}

let default_params =
  { tx_cost = Time.us 4.0; rx_cost = Time.us 5.0;
    checksum_bytes_per_s = 150e6 }

type t = {
  ip : Ip.t;
  params : params;
  handlers : (int, Packet.udp_datagram -> src:int -> unit) Hashtbl.t;
  mutable sent : int;
  mutable received : int;
  mutable unbound : int;
}

let env t = Ethernet.env (Ip.ethernet t.ip)
let cpu t = (env t).Hostenv.cpu

let checksum_time t bytes =
  Time.of_bytes_at_rate ~bytes_per_s:t.params.checksum_bytes_per_s bytes

let rx t (d : Packet.udp_datagram) ~src =
  Cpu.work ~priority:`High (cpu t) t.params.rx_cost;
  Cpu.work ~priority:`High (cpu t) (checksum_time t d.Packet.udp_bytes);
  match Hashtbl.find_opt t.handlers d.Packet.udp_dst_port with
  | Some h ->
      t.received <- t.received + 1;
      h d ~src
  | None -> t.unbound <- t.unbound + 1

let create ip ?(params = default_params) () =
  let t =
    { ip; params; handlers = Hashtbl.create 8; sent = 0; received = 0;
      unbound = 0 }
  in
  Ip.register_udp ip (rx t);
  t

let bind t ~port handler =
  if Hashtbl.mem t.handlers port then
    invalid_arg (Printf.sprintf "Udp.bind: port %d taken" port);
  Hashtbl.add t.handlers port handler

let sendto t ~dst ~dst_port ?(src_port = 0) ~bytes ~app ?(zero_copy = false)
    () =
  if bytes < 0 then invalid_arg "Udp.sendto: negative size";
  let e = env t in
  Cpu.work (cpu t) t.params.tx_cost;
  Cpu.work (cpu t) (checksum_time t bytes);
  let skb =
    if zero_copy then Skbuff.of_user ~header_bytes:Packet.udp_header_bytes bytes
    else begin
      (* Stage through kernel memory: the standard UDP copy. *)
      Cpu.copy (cpu t) ~membus:e.Hostenv.membus bytes;
      Skbuff.of_kernel ~header_bytes:Packet.udp_header_bytes bytes
    end
  in
  t.sent <- t.sent + 1;
  Ip.send t.ip ~dst ~skb
    (Packet.Udp
       { Packet.udp_src_port = src_port; udp_dst_port = dst_port;
         udp_bytes = bytes; udp_app = app })

let datagrams_sent t = t.sent
let datagrams_received t = t.received
let unbound_drops t = t.unbound
