(** A mechanistic TCP over {!Ip}: the baseline CLIC is measured against.

    Implements the mechanisms whose costs the paper attributes the TCP/IP
    overhead to: per-segment protocol processing through the stack's
    layers, per-byte checksumming and copying on both sides, segmentation
    to the MSS, cumulative and delayed ACKs (piggybacked on reverse data),
    sliding-window flow control, slow start / congestion avoidance, and
    timeout plus fast retransmission.  Data is byte counts; sequence
    numbers are real and start at zero per direction.

    Contexts: {!send}/{!recv} block and must run in task-context processes;
    segment reception runs at interrupt priority in the driver upcall.

    Cost parameters are {e effective} values fitted to the paper's
    measured TCP/IP curves (Figures 5 and 6) — see EXPERIMENTS.md — while
    every comparative behaviour (copies, interrupts, windowing) is
    simulated mechanically. *)

open Engine

type params = {
  tx_per_segment : Time.span;  (** TCP+socket work per data segment sent *)
  rx_per_segment : Time.span;  (** per data segment received *)
  ack_tx_cost : Time.span;  (** building/sending a pure ACK *)
  ack_rx_cost : Time.span;  (** processing a received pure ACK *)
  per_send_call : Time.span;  (** socket-layer cost per send() call *)
  per_recv_call : Time.span;  (** socket-layer cost per recv() call *)
  tx_bytes_per_s : float;  (** copy-from-user + checksum rate, sender *)
  rx_bytes_per_s : float;  (** checksum / byte-touch rate, receiver *)
  socket_buffer : int;  (** send and receive buffer size, bytes *)
  initial_cwnd_segments : int;
  initial_ssthresh : int;
  delack_segments : int;  (** ACK every n-th data segment *)
  delack_timeout : Time.span;
  rto : Time.span;  (** fixed retransmission timeout *)
  dupack_threshold : int;
}

val default_params : params

type t
(** Per-host TCP instance. *)

type conn

val create : Ip.t -> ?params:params -> unit -> t
val params : t -> params

val listen : t -> port:int -> unit
(** @raise Invalid_argument if the port is already listening. *)

val connect : t -> dst:int -> port:int -> conn
(** Blocking three-way handshake; must run in a process. *)

val accept : t -> port:int -> conn
(** Blocks until a connection on the listening port completes. *)

val send : conn -> int -> unit
(** Writes [n] bytes to the stream; blocks while the send buffer is full. *)

val recv : conn -> int -> unit
(** Consumes exactly [n] bytes from the stream, blocking as needed. *)

val available : conn -> int
(** Bytes received, in order, and not yet consumed. *)

val close : conn -> unit
(** Orderly shutdown of our sending direction: drains buffered data, sends
    FIN and waits a round trip.  Idempotent; must run in a process. *)

val at_eof : conn -> bool
(** The peer closed and every delivered byte has been consumed. *)

val fin_received : conn -> bool

(** A {!recv} that would block after the peer closed raises
    [End_of_file]. *)

val pp_conn : Format.formatter -> conn -> unit
val ip_of : t -> Ip.t
val peer_of : conn -> int
(** The remote node id. *)

val mss : conn -> int
(** MTU minus the 40 header bytes. *)

(** {1 Statistics} *)

val segments_sent : t -> int
val retransmits : t -> int
val acks_sent : t -> int
val bytes_delivered : conn -> int
(** In-order bytes handed to the application side (consumed or waiting). *)
