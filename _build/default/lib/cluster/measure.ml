open Engine
open Os_model

type pair = {
  label : string;
  a_setup : unit -> unit;
  b_setup : unit -> unit;
  a_send : int -> unit;
  a_recv : int -> unit;
  b_send : int -> unit;
  b_recv : int -> unit;
}

let clic_pair cluster ~a ~b ?(port = 7) () =
  let na = Net.node cluster a and nb = Net.node cluster b in
  {
    label = "clic";
    a_setup = (fun () -> ());
    b_setup = (fun () -> ());
    a_send = (fun n -> Clic.Api.send na.Node.clic ~dst:b ~port n);
    a_recv = (fun _ -> ignore (Clic.Api.recv na.Node.clic ~port));
    b_send = (fun n -> Clic.Api.send nb.Node.clic ~dst:a ~port n);
    b_recv = (fun _ -> ignore (Clic.Api.recv nb.Node.clic ~port));
  }

let tcp_pair cluster ~a ~b ?(port = 5000) () =
  let na = Net.node cluster a and nb = Net.node cluster b in
  let conn_a = ref None and conn_b = ref None in
  let get slot = match !slot with Some c -> c | None -> assert false in
  Proto.Tcp.listen nb.Node.tcp ~port;
  {
    label = "tcp";
    a_setup = (fun () -> conn_a := Some (Proto.Tcp.connect na.Node.tcp ~dst:b ~port));
    b_setup = (fun () -> conn_b := Some (Proto.Tcp.accept nb.Node.tcp ~port));
    a_send = (fun n -> Proto.Tcp.send (get conn_a) n);
    a_recv = (fun n -> Proto.Tcp.recv (get conn_a) n);
    b_send = (fun n -> Proto.Tcp.send (get conn_b) n);
    b_recv = (fun n -> Proto.Tcp.recv (get conn_b) n);
  }

type pingpong_result = {
  one_way : Time.span;
  pp_bandwidth_mbps : float;
}

let pingpong cluster pair ~size ?(reps = 20) ?(warmup = 4) () =
  let sim = cluster.Net.sim in
  let started = Ivar.create () and elapsed = Ivar.create () in
  Process.spawn sim (fun () ->
      pair.b_setup ();
      for _ = 1 to warmup + reps do
        pair.b_recv size;
        pair.b_send size
      done);
  Process.spawn sim (fun () ->
      pair.a_setup ();
      for _ = 1 to warmup do
        pair.a_send size;
        pair.a_recv size
      done;
      let t0 = Sim.now sim in
      Ivar.fill started t0;
      for _ = 1 to reps do
        pair.a_send size;
        pair.a_recv size
      done;
      Ivar.fill elapsed (Time.diff (Sim.now sim) t0));
  Net.run cluster;
  let span = Ivar.peek elapsed in
  match span with
  | None -> failwith "Measure.pingpong: benchmark did not complete"
  | Some span ->
      let one_way = span / (2 * reps) in
      {
        one_way;
        pp_bandwidth_mbps = Units.bandwidth_mbps ~bytes:size ~span:one_way;
      }

(* Per-iteration one-way samples, for latency distributions. *)
let latency_samples cluster pair ~size ?(reps = 50) ?(warmup = 4) () =
  let sim = cluster.Net.sim in
  let samples = ref [] in
  Process.spawn sim (fun () ->
      pair.b_setup ();
      for _ = 1 to warmup + reps do
        pair.b_recv size;
        pair.b_send size
      done);
  Process.spawn sim (fun () ->
      pair.a_setup ();
      for _ = 1 to warmup do
        pair.a_send size;
        pair.a_recv size
      done;
      for _ = 1 to reps do
        let t0 = Sim.now sim in
        pair.a_send size;
        pair.a_recv size;
        samples := Time.diff (Sim.now sim) t0 / 2 :: !samples
      done);
  Net.run cluster;
  List.rev !samples

type stream_result = {
  elapsed : Time.span;
  st_bandwidth_mbps : float;
  sender_cpu : float;
  receiver_cpu : float;
  receiver_interrupts : int;
}

let stream cluster pair ~a ~b ~size ~messages =
  let sim = cluster.Net.sim in
  let na = Net.node cluster a and nb = Net.node cluster b in
  let t0 = ref Time.zero and t1 = ref Time.zero in
  let irq0 = ref 0 in
  let sender_cpu = ref 0. and receiver_cpu = ref 0. and irqs = ref 0 in
  let setup_done = Ivar.create () in
  Process.spawn sim (fun () ->
      pair.b_setup ();
      Ivar.read setup_done;
      for _ = 1 to messages do
        pair.b_recv size
      done;
      (* Read the stats at the moment the last byte lands, before trailing
         timers stretch the clock. *)
      t1 := Sim.now sim;
      sender_cpu := Cpu.utilization (Node.cpu na) ~since:!t0;
      receiver_cpu := Cpu.utilization (Node.cpu nb) ~since:!t0;
      irqs := Interrupt.irqs_delivered nb.Node.intr - !irq0);
  Process.spawn sim (fun () ->
      pair.a_setup ();
      (* Handshakes (if any) stay outside the timed window. *)
      t0 := Sim.now sim;
      Cpu.reset_stats (Node.cpu na);
      Cpu.reset_stats (Node.cpu nb);
      irq0 := Interrupt.irqs_delivered nb.Node.intr;
      Ivar.fill setup_done ();
      for _ = 1 to messages do
        pair.a_send size
      done);
  Net.run cluster;
  let elapsed = Time.diff !t1 !t0 in
  {
    elapsed;
    st_bandwidth_mbps =
      Units.bandwidth_mbps ~bytes:(size * messages) ~span:elapsed;
    sender_cpu = !sender_cpu;
    receiver_cpu = !receiver_cpu;
    receiver_interrupts = !irqs;
  }
