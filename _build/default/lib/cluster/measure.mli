(** Measurement harnesses: the benchmark procedures behind every figure.

    A {!pair} abstracts one A↔B communication path (CLIC, TCP, MPI on
    either, PVM...) so the same NetPIPE-style procedures run over every
    stack.  All measurements run the given cluster's simulation to
    completion, so use a fresh cluster per data point. *)

open Engine

type pair = {
  label : string;
  a_setup : unit -> unit;  (** runs once in a process on node A *)
  b_setup : unit -> unit;
  a_send : int -> unit;  (** send one n-byte message A→B *)
  a_recv : int -> unit;  (** consume one n-byte message at A *)
  b_send : int -> unit;
  b_recv : int -> unit;
}

val clic_pair : Net.t -> a:int -> b:int -> ?port:int -> unit -> pair
val tcp_pair : Net.t -> a:int -> b:int -> ?port:int -> unit -> pair

type pingpong_result = {
  one_way : Time.span;  (** mean one-way time (half round trip) *)
  pp_bandwidth_mbps : float;  (** size / one-way, the NetPIPE figure *)
}

val pingpong :
  Net.t -> pair -> size:int -> ?reps:int -> ?warmup:int -> unit ->
  pingpong_result
(** Round-trip exchange of [size]-byte messages, [reps] timed iterations
    after [warmup] untimed ones. *)

val latency_samples :
  Net.t -> pair -> size:int -> ?reps:int -> ?warmup:int -> unit ->
  Time.span list
(** Per-iteration one-way latency samples (half round trips), for
    distribution/jitter analysis. *)

type stream_result = {
  elapsed : Time.span;
  st_bandwidth_mbps : float;  (** application goodput *)
  sender_cpu : float;  (** CPU utilization during the timed window *)
  receiver_cpu : float;
  receiver_interrupts : int;
}

val stream :
  Net.t -> pair -> a:int -> b:int -> size:int -> messages:int ->
  stream_result
(** One-way saturation stream of [messages] × [size] bytes; bandwidth is
    measured at the receiving application. *)
