lib/cluster/net.mli: Engine Hw Node Sim Switch Time
