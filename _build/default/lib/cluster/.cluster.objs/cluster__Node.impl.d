lib/cluster/node.ml: Bottom_half Clic Cpu Driver Engine Eth_frame Ethernet Fault Hostenv Hw Interrupt Ip Kmem List Membus Nic Os_model Pci Printf Process Proto Sched Switch Syscall Tcp Time Trace Udp
