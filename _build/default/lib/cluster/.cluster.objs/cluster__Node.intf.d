lib/cluster/node.mli: Clic Cpu Driver Engine Ethernet Fault Hostenv Hw Interrupt Ip Nic Os_model Proto Sim Switch Tcp Time Trace Udp
