lib/cluster/measure.ml: Clic Cpu Engine Interrupt Ivar List Net Node Os_model Process Proto Sim Time Units
