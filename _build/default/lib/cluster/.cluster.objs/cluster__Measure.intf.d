lib/cluster/measure.mli: Engine Net Time
