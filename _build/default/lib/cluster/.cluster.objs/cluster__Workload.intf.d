lib/cluster/workload.mli: Engine Net Time
