lib/cluster/workload.ml: Clic Engine Net Node Process Rng Sim Time
