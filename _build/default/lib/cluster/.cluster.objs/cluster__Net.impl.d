lib/cluster/net.ml: Array Engine Hw List Node Printf Sim Switch Time
