(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation, and (optionally) times each regeneration with the Bechamel
   test definitions.

   Usage:
     dune exec bench/main.exe              # regenerate everything
     dune exec bench/main.exe -- fig5      # one experiment
     dune exec bench/main.exe -- --quick   # smaller sweeps
     dune exec bench/main.exe -- --csv DIR # also write fig4/5/6 as CSV
     dune exec bench/main.exe -- --bechamel
         # wall-clock timing of each experiment's simulation run (one
         # Bechamel Test.make per table/figure; single-shot sampling, since
         # each iteration is a complete deterministic simulation)

   Simulated results are deterministic: re-running prints identical
   numbers. *)

let fmt = Format.std_formatter
let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* One Bechamel test per table/figure: each run executes the experiment's
   full simulation (output suppressed).  The long sweeps (fig4-6) run in
   quick mode under timing so the harness stays snappy. *)
let experiment_runs =
  [
    ("fig4", fun () -> ignore (Report.Figures.fig4 ~quick:true null_fmt));
    ("fig5", fun () -> ignore (Report.Figures.fig5 ~quick:true null_fmt));
    ("fig6", fun () -> ignore (Report.Figures.fig6 ~quick:true null_fmt));
    ("fig7", fun () -> Report.Figures.run "fig7" null_fmt);
    ("tab1", fun () -> ignore (Report.Figures.tab1 ~quick:true null_fmt));
    ("fig1", fun () -> ignore (Report.Figures.fig1 ~quick:true null_fmt));
    ("sec2", fun () -> Report.Figures.run "sec2" null_fmt);
    ("sec3", fun () -> Report.Figures.run "sec3" null_fmt);
    ("ext1", fun () -> Report.Figures.run "ext1" null_fmt);
    ("ext2", fun () -> Report.Figures.run "ext2" null_fmt);
    ("ext3", fun () -> Report.Figures.run "ext3" null_fmt);
    ("ext4", fun () -> Report.Figures.run "ext4" null_fmt);
    ("stress", fun () -> Report.Figures.run "stress" null_fmt);
  ]

let bechamel_tests =
  List.map
    (fun (id, fn) -> Bechamel.Test.make ~name:id (Bechamel.Staged.stage fn))
    experiment_runs

(* Bechamel's OLS analysis needs many iterations; a complete deterministic
   simulation per iteration makes single-shot wall-clock sampling the
   sensible measurement, so we time each test's closure directly (the
   Test.make definitions above stay usable with the full Bechamel
   driver). *)
let run_bechamel () =
  assert (List.length bechamel_tests = List.length experiment_runs);
  List.iter
    (fun (name, fn) ->
      let t0 = Unix.gettimeofday () in
      fn ();
      let t1 = Unix.gettimeofday () in
      Format.printf "bechamel %-10s %8.2f s/run@." name (t1 -. t0))
    experiment_runs

let csv_dir args =
  let rec go = function
    | "--csv" :: dir :: _ -> Some dir
    | _ :: rest -> go rest
    | [] -> None
  in
  go args

let write_csv dir name series =
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  output_string oc (Report.Render.series_csv ~x_label:"size_bytes" series);
  close_out oc;
  Format.printf "wrote %s@." path

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let csv = csv_dir args in
  let ids =
    let rec strip = function
      | "--csv" :: _ :: rest -> strip rest
      | a :: rest when String.length a > 2 && String.sub a 0 2 = "--" ->
          strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip args
  in
  if List.mem "--bechamel" args then run_bechamel ()
  else begin
    let to_run = if ids = [] then Report.Figures.all_ids else ids in
    let maybe_csv name series =
      match csv with Some dir -> write_csv dir name series | None -> ()
    in
    List.iter
      (fun id ->
        match id with
        | "fig4" -> maybe_csv "fig4" (Report.Figures.fig4 ~quick fmt)
        | "fig5" -> maybe_csv "fig5" (Report.Figures.fig5 ~quick fmt)
        | "fig6" -> maybe_csv "fig6" (Report.Figures.fig6 ~quick fmt)
        | "tab1" -> ignore (Report.Figures.tab1 ~quick fmt)
        | "fig1" -> ignore (Report.Figures.fig1 ~quick fmt)
        | other -> Report.Figures.run other fmt)
      to_run;
    Format.fprintf fmt "@."
  end
